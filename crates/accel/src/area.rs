//! A coarse area model (40 nm class), substantiating the paper's
//! "no additional computational or area overheads" claim with numbers.
//!
//! The paper synthesises its RTL with Synopsys DC on a 40 nm TSMC
//! library; offline we tabulate per-component area constants from
//! published 40/45 nm accelerator breakdowns (BitFusion reports
//! BitBrick-array and buffer areas; SRAM macros scale ~linearly in
//! capacity at fixed port count). Only *relative* areas matter for the
//! claim under test: the controller that runs the Drift algorithm — a
//! comparator pair, a small LUT, and the index buffer — is a rounding
//! error next to 792 BitGroups and half a megabyte of SRAM.

use crate::memory::BufferSet;
use crate::systolic::ArrayGeometry;
use serde::{Deserialize, Serialize};

/// Area constants, in mm² (40 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One BitGroup (16 BitBricks + accumulate + link mux), mm².
    pub bitgroup_mm2: f64,
    /// SRAM density, mm² per KiB (6T, single port).
    pub sram_mm2_per_kib: f64,
    /// The precision selector (two comparators + control), mm².
    pub selector_mm2: f64,
    /// The scheduler (the Eq. 8 sweep engine), mm².
    pub scheduler_mm2: f64,
    /// The per-BG bidirectional-link overhead Drift adds over
    /// BitFusion's fixed links, as a fraction of BitGroup area.
    pub link_overhead_fraction: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            bitgroup_mm2: 0.0024,
            sram_mm2_per_kib: 0.0045,
            selector_mm2: 0.0020,
            scheduler_mm2: 0.0035,
            link_overhead_fraction: 0.03,
        }
    }
}

/// A per-component area report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Compute fabric, mm².
    pub fabric_mm2: f64,
    /// Drift's extra bidirectional links, mm².
    pub links_mm2: f64,
    /// Global + weight buffers, mm².
    pub buffers_mm2: f64,
    /// Index buffer, mm².
    pub index_mm2: f64,
    /// Controller (selector + scheduler), mm².
    pub controller_mm2: f64,
}

impl AreaReport {
    /// Total die area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.fabric_mm2 + self.links_mm2 + self.buffers_mm2 + self.index_mm2 + self.controller_mm2
    }

    /// The share of the total attributable to supporting the dynamic
    /// precision algorithm (links + index buffer + controller) — the
    /// quantity behind the paper's "no additional area overheads".
    pub fn dynamic_precision_overhead(&self) -> f64 {
        (self.links_mm2 + self.index_mm2 + self.controller_mm2) / self.total_mm2()
    }
}

/// Computes the area of a Drift-class chip.
pub fn drift_area(model: &AreaModel, fabric: ArrayGeometry, buffers: &BufferSet) -> AreaReport {
    let fabric_mm2 = fabric.units() as f64 * model.bitgroup_mm2;
    AreaReport {
        fabric_mm2,
        links_mm2: fabric_mm2 * model.link_overhead_fraction,
        buffers_mm2: (buffers.global.capacity_bytes() + buffers.weight.capacity_bytes()) as f64
            / 1024.0
            * model.sram_mm2_per_kib,
        index_mm2: buffers.index.capacity_bytes() as f64 / 1024.0 * model.sram_mm2_per_kib,
        controller_mm2: model.selector_mm2 + model.scheduler_mm2,
    }
}

/// Computes the area of a BitFusion-class chip (same fabric and data
/// buffers, no dynamic-precision support).
pub fn bitfusion_area(model: &AreaModel, fabric: ArrayGeometry, buffers: &BufferSet) -> AreaReport {
    AreaReport {
        fabric_mm2: fabric.units() as f64 * model.bitgroup_mm2,
        links_mm2: 0.0,
        buffers_mm2: (buffers.global.capacity_bytes() + buffers.weight.capacity_bytes()) as f64
            / 1024.0
            * model.sram_mm2_per_kib,
        index_mm2: 0.0,
        controller_mm2: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfusion::paper_geometry;

    #[test]
    fn totals_are_positive_and_decompose() {
        let model = AreaModel::default();
        let report = drift_area(&model, paper_geometry(), &BufferSet::drift_default());
        assert!(report.total_mm2() > 0.0);
        let sum = report.fabric_mm2
            + report.links_mm2
            + report.buffers_mm2
            + report.index_mm2
            + report.controller_mm2;
        assert!((report.total_mm2() - sum).abs() < 1e-12);
    }

    #[test]
    fn dynamic_precision_overhead_is_small() {
        // The claim under test: the algorithm's hardware support costs
        // a few percent of the die, not tens.
        let model = AreaModel::default();
        let report = drift_area(&model, paper_geometry(), &BufferSet::drift_default());
        let overhead = report.dynamic_precision_overhead();
        assert!(
            overhead < 0.08,
            "dynamic-precision support at {:.1}% of the die",
            overhead * 100.0
        );
        assert!(overhead > 0.0);
    }

    #[test]
    fn drift_slightly_larger_than_bitfusion() {
        let model = AreaModel::default();
        let buffers = BufferSet::drift_default();
        let drift = drift_area(&model, paper_geometry(), &buffers);
        let bitfusion = bitfusion_area(&model, paper_geometry(), &buffers);
        assert!(drift.total_mm2() > bitfusion.total_mm2());
        let ratio = drift.total_mm2() / bitfusion.total_mm2();
        assert!(ratio < 1.10, "area ratio {ratio} too large");
    }

    #[test]
    fn fabric_dominates() {
        let model = AreaModel::default();
        let report = drift_area(&model, paper_geometry(), &BufferSet::drift_default());
        assert!(report.fabric_mm2 > report.buffers_mm2 * 0.3);
        assert!(report.fabric_mm2 > report.controller_mm2 * 50.0);
    }
}
