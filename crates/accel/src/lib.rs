//! Cycle-level accelerator simulation substrate for the Drift
//! reproduction.
//!
//! The Drift paper evaluates its accelerator against three baselines on a
//! cycle-accurate simulator (its Section 5.1). This crate provides that
//! simulation substrate, built from scratch:
//!
//! * [`gemm`] — GEMM shapes and mixed-precision workloads
//!   ([`gemm::GemmWorkload`]): the unit of work every accelerator
//!   executes.
//! * [`systolic`] — the weight-stationary systolic-array timing model:
//!   the analytical latency of paper Eq. 7 and a cycle-level stream
//!   simulator that models the dataflow stalls of Section 2.3.
//! * [`dram`] — a banked row-buffer DRAM simulator (stand-in for
//!   DRAMsim3) for access latency and energy.
//! * [`memory`] — on-chip SRAM buffer models (global / weight / index).
//! * [`energy`] — the 40 nm-inspired energy model and the
//!   static/DRAM/buffer/core breakdown of paper Fig. 8.
//! * [`area`] — a coarse 40 nm area model substantiating the "no
//!   additional area overheads" claim.
//! * [`accelerator`] — the [`accelerator::Accelerator`] trait and shared
//!   execution reporting.
//! * [`eyeriss`] — the Eyeriss FP32 baseline (14×16 PEs).
//! * [`bitfusion`] — the BitFusion precision-flexible baseline (static
//!   fusion; stalls under dynamic precision).
//! * [`drq`] — the DRQ variable-speed systolic-array baseline.
//! * [`trace`] — a serialisable per-layer execution timeline.
//!
//! The Drift accelerator itself (BitGroup fabric, dataflow splitting,
//! online scheduling) lives in `drift-core`, built on this substrate.
//!
//! # Example
//!
//! Execute a GEMM on BitFusion configured for static INT8:
//!
//! ```rust
//! use drift_accel::accelerator::Accelerator;
//! use drift_accel::bitfusion::BitFusion;
//! use drift_accel::gemm::{GemmShape, GemmWorkload};
//!
//! # fn main() -> Result<(), drift_accel::AccelError> {
//! let shape = GemmShape::new(256, 768, 768)?;
//! let workload = GemmWorkload::uniform("attn-qkv", shape, false);
//! let mut bitfusion = BitFusion::int8()?;
//! let report = bitfusion.execute(&workload)?;
//! assert!(report.cycles > 0);
//! assert!(report.energy.total_pj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod area;
pub mod bitfusion;
pub mod dram;
pub mod drq;
pub mod energy;
pub mod eyeriss;
pub mod gemm;
pub mod memory;
pub mod systolic;
pub mod trace;

pub use accelerator::{Accelerator, ExecReport};
pub use energy::EnergyBreakdown;
pub use gemm::{GemmShape, GemmWorkload};

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// A GEMM dimension, array extent, or hardware parameter was zero or
    /// otherwise out of range.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// A workload's precision map does not match its GEMM shape.
    WorkloadMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig { name, detail } => {
                write!(f, "invalid configuration {name}: {detail}")
            }
            AccelError::WorkloadMismatch { detail } => {
                write!(f, "workload mismatch: {detail}")
            }
        }
    }
}

impl Error for AccelError {}

/// Convenience result alias used across the crate.
pub type Result<T, E = AccelError> = std::result::Result<T, E>;
