//! GEMM shapes and mixed-precision workloads.
//!
//! Every accelerator in this reproduction consumes the same unit of work:
//! a GEMM `(M, K, N)` — activations `M×K` times weights `K×N` — annotated
//! with per-row activation precisions and per-column weight precisions.
//! In the weight-stationary dataflow of paper Eq. 7, `M` is the streamed
//! dimension (one activation row / token / im2col patch per injection),
//! `K` maps onto array rows, and `N` onto array columns.
//!
//! Dynamic precision quantization decides, per activation sub-tensor
//! (= per GEMM row) and per weight sub-tensor (= per GEMM column group),
//! whether the data is 8-bit or 4-bit; a [`GemmWorkload`] carries those
//! decisions so that simulators can reproduce both the computation
//! savings and the dataflow hazards.

use crate::{AccelError, Result};
use drift_quant::precision::{Precision, PrecisionPair};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three dimensions of a GEMM: `M×K` activations times `K×N` weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Streamed dimension (rows of the activation matrix: tokens,
    /// patches, im2col windows).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output dimension (weight columns / output channels).
    pub n: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if any dimension is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Result<Self> {
        if m == 0 || k == 0 || n == 0 {
            return Err(AccelError::InvalidConfig {
                name: "gemm shape",
                detail: format!("dimensions must be positive, got ({m}, {k}, {n})"),
            });
        }
        Ok(GemmShape { m, k, n })
    }

    /// Number of multiply-accumulate operations, `M·K·N`.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// A sub-GEMM sharing `K` with `rows` streamed rows and `cols`
    /// output columns. Returns `None` when either count is zero (an
    /// empty tile).
    pub fn tile(&self, rows: usize, cols: usize) -> Option<GemmShape> {
        if rows == 0 || cols == 0 {
            None
        } else {
            Some(GemmShape {
                m: rows,
                k: self.k,
                n: cols,
            })
        }
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

/// A GEMM annotated with dynamic precision decisions.
///
/// `act_high[i]` is true when streamed row `i` computes at the high
/// precision; `weight_high[j]` likewise for weight column `j`.
///
/// # Example
///
/// ```rust
/// use drift_accel::gemm::{GemmShape, GemmWorkload};
///
/// # fn main() -> Result<(), drift_accel::AccelError> {
/// let shape = GemmShape::new(4, 64, 8)?;
/// let w = GemmWorkload::new(
///     "toy",
///     shape,
///     vec![true, false, false, false],
///     vec![false; 8],
/// )?;
/// assert!((w.act_high_fraction() - 0.25).abs() < 1e-12);
/// assert_eq!(w.weight_high_fraction(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmWorkload {
    name: String,
    shape: GemmShape,
    act_high: Vec<bool>,
    weight_high: Vec<bool>,
    act_precisions: (Precision, Precision),
    weight_precisions: (Precision, Precision),
}

impl GemmWorkload {
    /// Creates a workload from explicit precision maps, with the paper's
    /// default precisions (high = INT8, low = INT4).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::WorkloadMismatch`] unless
    /// `act_high.len() == m` and `weight_high.len() == n`.
    pub fn new(
        name: impl Into<String>,
        shape: GemmShape,
        act_high: Vec<bool>,
        weight_high: Vec<bool>,
    ) -> Result<Self> {
        if act_high.len() != shape.m {
            return Err(AccelError::WorkloadMismatch {
                detail: format!(
                    "act_high has {} entries for M = {}",
                    act_high.len(),
                    shape.m
                ),
            });
        }
        if weight_high.len() != shape.n {
            return Err(AccelError::WorkloadMismatch {
                detail: format!(
                    "weight_high has {} entries for N = {}",
                    weight_high.len(),
                    shape.n
                ),
            });
        }
        Ok(GemmWorkload {
            name: name.into(),
            shape,
            act_high,
            weight_high,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
        })
    }

    /// A workload where every row and column is high precision
    /// (`high = true`) or every one low (`high = false`): the static
    /// quantization baselines.
    pub fn uniform(name: impl Into<String>, shape: GemmShape, low: bool) -> Self {
        GemmWorkload {
            name: name.into(),
            shape,
            act_high: vec![!low; shape.m],
            weight_high: vec![!low; shape.n],
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
        }
    }

    /// Overrides the high/low precisions (for 3/5-bit ablations).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if a "high" precision is not
    /// strictly wider than its "low" counterpart.
    pub fn with_precisions(
        mut self,
        act: (Precision, Precision),
        weight: (Precision, Precision),
    ) -> Result<Self> {
        if act.0.bits() <= act.1.bits() || weight.0.bits() <= weight.1.bits() {
            return Err(AccelError::InvalidConfig {
                name: "precisions",
                detail: "high precision must be wider than low".to_string(),
            });
        }
        self.act_precisions = act;
        self.weight_precisions = weight;
        Ok(self)
    }

    /// Workload name (layer identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GEMM shape.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// Per-row activation precision flags (`true` = high).
    pub fn act_high(&self) -> &[bool] {
        &self.act_high
    }

    /// Per-column weight precision flags (`true` = high).
    pub fn weight_high(&self) -> &[bool] {
        &self.weight_high
    }

    /// The (high, low) activation precisions.
    pub fn act_precisions(&self) -> (Precision, Precision) {
        self.act_precisions
    }

    /// The (high, low) weight precisions.
    pub fn weight_precisions(&self) -> (Precision, Precision) {
        self.weight_precisions
    }

    /// The precision of streamed row `i`.
    pub fn act_precision(&self, i: usize) -> Precision {
        if self.act_high[i] {
            self.act_precisions.0
        } else {
            self.act_precisions.1
        }
    }

    /// The precision of weight column `j`.
    pub fn weight_precision(&self, j: usize) -> Precision {
        if self.weight_high[j] {
            self.weight_precisions.0
        } else {
            self.weight_precisions.1
        }
    }

    /// Fraction of streamed rows at high precision.
    pub fn act_high_fraction(&self) -> f64 {
        self.act_high.iter().filter(|&&h| h).count() as f64 / self.shape.m as f64
    }

    /// Fraction of weight columns at high precision.
    pub fn weight_high_fraction(&self) -> f64 {
        self.weight_high.iter().filter(|&&h| h).count() as f64 / self.shape.n as f64
    }

    /// Fraction of MACs whose *activation operand* is low precision —
    /// the "percentage of 4-bit data computation" the paper reports in
    /// Fig. 6 and Table 1.
    pub fn low_compute_fraction(&self) -> f64 {
        1.0 - self.act_high_fraction()
    }

    /// Splits the workload into the four precision-pair tiles of paper
    /// Section 4.2: `(hh, hl, lh, ll)` row/column counts. Tiles may be
    /// empty.
    pub fn quadrants(&self) -> [PrecisionQuadrant; 4] {
        let m_h = self.act_high.iter().filter(|&&h| h).count();
        let m_l = self.shape.m - m_h;
        let n_h = self.weight_high.iter().filter(|&&h| h).count();
        let n_l = self.shape.n - n_h;
        let (ah, al) = self.act_precisions;
        let (wh, wl) = self.weight_precisions;
        [
            PrecisionQuadrant {
                pair: PrecisionPair::new(ah, wh),
                rows: m_h,
                cols: n_h,
                k: self.shape.k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(ah, wl),
                rows: m_h,
                cols: n_l,
                k: self.shape.k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(al, wh),
                rows: m_l,
                cols: n_h,
                k: self.shape.k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(al, wl),
                rows: m_l,
                cols: n_l,
                k: self.shape.k,
            },
        ]
    }

    /// Bytes of activation data streamed once (per-row precisions
    /// applied).
    pub fn act_bytes(&self) -> u64 {
        self.act_high
            .iter()
            .map(|&h| {
                let bits = if h {
                    self.act_precisions.0.bits()
                } else {
                    self.act_precisions.1.bits()
                };
                (self.shape.k as u64 * u64::from(bits)).div_ceil(8)
            })
            .sum()
    }

    /// Bytes of weight data loaded once (per-column precisions applied).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_high
            .iter()
            .map(|&h| {
                let bits = if h {
                    self.weight_precisions.0.bits()
                } else {
                    self.weight_precisions.1.bits()
                };
                (self.shape.k as u64 * u64::from(bits)).div_ceil(8)
            })
            .sum()
    }

    /// Bytes of output data written once (outputs stay at the high
    /// precision before the next layer's requantization).
    pub fn output_bytes(&self) -> u64 {
        self.shape.m as u64
            * self.shape.n as u64
            * u64::from(self.act_precisions.0.bits()).div_ceil(8)
    }

    /// Bytes of the precision index (1 bit per activation row and weight
    /// column, rounded up), the paper's index-buffer payload.
    pub fn index_bytes(&self) -> u64 {
        (self.shape.m as u64).div_ceil(8) + (self.shape.n as u64).div_ceil(8)
    }
}

/// One of the four precision-pair tiles a mixed-precision GEMM splits
/// into (paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionQuadrant {
    /// The (activation, weight) precision pair.
    pub pair: PrecisionPair,
    /// Streamed rows in this tile.
    pub rows: usize,
    /// Output columns in this tile.
    pub cols: usize,
    /// Shared reduction dimension.
    pub k: usize,
}

impl PrecisionQuadrant {
    /// Whether this tile has no work.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The tile as a [`GemmShape`], or `None` when empty.
    pub fn shape(&self) -> Option<GemmShape> {
        if self.is_empty() {
            None
        } else {
            Some(GemmShape {
                m: self.rows,
                k: self.k,
                n: self.cols,
            })
        }
    }

    /// MACs in this tile.
    pub fn macs(&self) -> u64 {
        self.rows as u64 * self.k as u64 * self.cols as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(GemmShape::new(0, 1, 1).is_err());
        assert!(GemmShape::new(1, 0, 1).is_err());
        assert!(GemmShape::new(1, 1, 0).is_err());
        let s = GemmShape::new(2, 3, 4).unwrap();
        assert_eq!(s.macs(), 24);
        assert_eq!(s.to_string(), "2x3x4");
    }

    #[test]
    fn tile_of_shape() {
        let s = GemmShape::new(8, 16, 8).unwrap();
        let t = s.tile(4, 2).unwrap();
        assert_eq!((t.m, t.k, t.n), (4, 16, 2));
        assert!(s.tile(0, 2).is_none());
    }

    #[test]
    fn workload_validates_lengths() {
        let s = GemmShape::new(4, 8, 4).unwrap();
        assert!(GemmWorkload::new("x", s, vec![true; 3], vec![true; 4]).is_err());
        assert!(GemmWorkload::new("x", s, vec![true; 4], vec![true; 5]).is_err());
        assert!(GemmWorkload::new("x", s, vec![true; 4], vec![true; 4]).is_ok());
    }

    #[test]
    fn uniform_fractions() {
        let s = GemmShape::new(4, 8, 4).unwrap();
        let hi = GemmWorkload::uniform("hi", s, false);
        assert_eq!(hi.act_high_fraction(), 1.0);
        assert_eq!(hi.low_compute_fraction(), 0.0);
        let lo = GemmWorkload::uniform("lo", s, true);
        assert_eq!(lo.weight_high_fraction(), 0.0);
        assert_eq!(lo.low_compute_fraction(), 1.0);
    }

    #[test]
    fn quadrants_partition_the_gemm() {
        let s = GemmShape::new(10, 32, 8).unwrap();
        let w = GemmWorkload::new(
            "q",
            s,
            (0..10).map(|i| i < 3).collect(),
            (0..8).map(|j| j < 2).collect(),
        )
        .unwrap();
        let quads = w.quadrants();
        assert_eq!(quads[0].rows, 3);
        assert_eq!(quads[0].cols, 2);
        assert_eq!(quads[3].rows, 7);
        assert_eq!(quads[3].cols, 6);
        let total: u64 = quads.iter().map(PrecisionQuadrant::macs).sum();
        assert_eq!(total, s.macs());
    }

    #[test]
    fn byte_accounting() {
        let s = GemmShape::new(2, 16, 2).unwrap();
        let w = GemmWorkload::new("b", s, vec![true, false], vec![true, false]).unwrap();
        // One 8-bit row (16 B) + one 4-bit row (8 B).
        assert_eq!(w.act_bytes(), 24);
        assert_eq!(w.weight_bytes(), 24);
        // Outputs: 2x2 at 1 byte.
        assert_eq!(w.output_bytes(), 4);
        assert_eq!(w.index_bytes(), 2);
    }

    #[test]
    fn per_row_and_column_precisions() {
        let s = GemmShape::new(2, 4, 2).unwrap();
        let w = GemmWorkload::new("p", s, vec![true, false], vec![false, true]).unwrap();
        assert_eq!(w.act_precision(0), Precision::INT8);
        assert_eq!(w.act_precision(1), Precision::INT4);
        assert_eq!(w.weight_precision(0), Precision::INT4);
        assert_eq!(w.weight_precision(1), Precision::INT8);
    }

    #[test]
    fn custom_precisions_validated() {
        let s = GemmShape::new(2, 4, 2).unwrap();
        let w = GemmWorkload::uniform("c", s, true);
        assert!(w
            .clone()
            .with_precisions(
                (Precision::INT5, Precision::INT3),
                (Precision::INT8, Precision::INT4)
            )
            .is_ok());
        assert!(w
            .with_precisions(
                (Precision::INT4, Precision::INT4),
                (Precision::INT8, Precision::INT4)
            )
            .is_err());
    }

    #[test]
    fn empty_quadrant_shape_is_none() {
        let q = PrecisionQuadrant {
            pair: PrecisionPair::LL,
            rows: 0,
            cols: 5,
            k: 3,
        };
        assert!(q.is_empty());
        assert!(q.shape().is_none());
        assert_eq!(q.macs(), 0);
    }
}
