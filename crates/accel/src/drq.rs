//! The DRQ accelerator baseline: a variable-speed systolic array.
//!
//! DRQ (Song et al., ISCA 2020) executes dynamically quantized models on
//! a single systolic array whose streaming rate adapts to the precision
//! of the data currently entering: 4-bit regions stream at full rate,
//! 8-bit regions at half rate (each element occupies two injection
//! slots). Two costs follow, and paper Section 5.3 attributes DRQ's gap
//! to Drift to them:
//!
//! 1. **Occupancy stalls** — every high-precision element stalls the
//!    wavefront for an extra slot, so the execute phase takes
//!    `M·(1 + f_h) + R + C - 2` instead of `M + R + C - 2`.
//! 2. **Speed-switch bubbles** — each transition between rates partially
//!    drains the pipeline. When high-precision sub-tensors are
//!    *interleaved* with low ones (as token-granular dynamics produce),
//!    the bubbles accumulate; this is why DRQ gains almost nothing on
//!    ViT-B (1.07× over BitFusion) despite a sizeable 4-bit fraction.
//!
//! DRQ keeps weights at a static 8 bits (only activations are dynamic in
//! its design), which this model enforces regardless of the workload's
//! weight flags.

use crate::accelerator::{finish_report, Accelerator, ExecReport, MemorySubsystem};
use crate::bitfusion::paper_geometry;
use crate::energy::EnergyModel;
use crate::gemm::GemmWorkload;
use crate::systolic::{simulate_stream, ArrayGeometry, BG_ACT_BIT_LANES, BG_WEIGHT_BIT_LANES};
use crate::{AccelError, Result};
use drift_quant::precision::Precision;

/// The DRQ variable-speed accelerator model.
#[derive(Debug)]
pub struct DrqAccelerator {
    geometry: ArrayGeometry,
    /// Pipeline bubble per speed transition, in cycles.
    switch_bubble: u64,
    energy: EnergyModel,
    memory: MemorySubsystem,
}

impl DrqAccelerator {
    /// The paper-comparison configuration: 792 units (24×33) with a
    /// 2-cycle speed-switch bubble (calibrated so DRQ lands at the
    /// paper's ~1.07× over BitFusion on ViT-B, where precisions are
    /// token-interleaved).
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn paper_config() -> Result<Self> {
        DrqAccelerator::new(paper_geometry(), 2)
    }

    /// Creates a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for a degenerate geometry.
    pub fn new(geometry: ArrayGeometry, switch_bubble: u64) -> Result<Self> {
        if geometry.units() == 0 {
            return Err(AccelError::InvalidConfig {
                name: "geometry",
                detail: "empty array".to_string(),
            });
        }
        Ok(DrqAccelerator {
            geometry,
            switch_bubble,
            energy: EnergyModel::default(),
            memory: MemorySubsystem::new()?,
        })
    }

    /// The speed-switch bubble in cycles.
    pub fn switch_bubble(&self) -> u64 {
        self.switch_bubble
    }

    /// Counts rate transitions in a precision stream.
    fn transitions(act_high: &[bool]) -> u64 {
        act_high.windows(2).filter(|w| w[0] != w[1]).count() as u64
    }
}

impl Accelerator for DrqAccelerator {
    fn name(&self) -> &str {
        "drq"
    }

    fn units(&self) -> usize {
        self.geometry.units()
    }

    fn execute(&mut self, workload: &GemmWorkload) -> Result<ExecReport> {
        let shape = workload.shape();
        let (act_hp, act_lp) = workload.act_precisions();
        let weight_prec = Precision::INT8; // DRQ weights are statically 8-bit.

        // The array's base rate serves the low activation precision;
        // high-precision elements occupy proportionally more slots.
        let occupancies: Vec<u32> = workload
            .act_high()
            .iter()
            .map(|&h| {
                if h {
                    u32::from(act_hp.bits()).div_ceil(u32::from(act_lp.bits()))
                } else {
                    1
                }
            })
            .collect();

        // Pass factors: K side at the low activation rate, N side at the
        // static 8-bit weight width.
        let k_passes = (u64::from(act_lp.bits()) * shape.k as u64)
            .div_ceil(BG_ACT_BIT_LANES * self.geometry.rows as u64);
        let n_passes = (u64::from(weight_prec.bits()) * shape.n as u64)
            .div_ceil(BG_WEIGHT_BIT_LANES * self.geometry.cols as u64);
        let passes = k_passes * n_passes;

        let mut report = simulate_stream(&occupancies, self.geometry, passes);

        // Speed-switch bubbles, incurred on every pass.
        let bubbles = Self::transitions(workload.act_high()) * self.switch_bubble * passes;
        report.total_cycles += bubbles;
        report.execute_cycles += bubbles;
        report.stall_cycles += bubbles;

        // Traffic: dynamic activations, static 8-bit weights, index for
        // the region precisions.
        let weight_bytes = shape.k as u64 * shape.n as u64; // 8-bit
        let traffic = self.memory.layer_traffic(
            workload.act_bytes(),
            weight_bytes,
            workload.output_bytes(),
            workload.index_bytes(),
            n_passes.max(1),
        );

        let core_pj = report.busy_bg_cycles as f64 * self.energy.e_bg_cycle_pj;
        Ok(finish_report(
            "drq",
            workload,
            report.total_cycles,
            report.stall_cycles,
            report.busy_bg_cycles,
            core_pj,
            traffic,
            self.geometry.units(),
            self.energy.static_pj_per_unit_cycle,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitfusion::BitFusion;
    use crate::gemm::GemmShape;

    fn workload_with_high_fraction(m: usize, frac: f64, interleaved: bool) -> GemmWorkload {
        let shape = GemmShape::new(m, 512, 512).unwrap();
        let high_count = (m as f64 * frac) as usize;
        let act_high: Vec<bool> = if interleaved {
            // Spread the high rows uniformly through the stream.
            (0..m)
                .map(|i| high_count > 0 && (i * high_count) % m < high_count)
                .collect()
        } else {
            (0..m).map(|i| i < high_count).collect()
        };
        GemmWorkload::new("w", shape, act_high, vec![false; 512]).unwrap()
    }

    #[test]
    fn transitions_counted() {
        assert_eq!(DrqAccelerator::transitions(&[true, true, false, true]), 2);
        assert_eq!(DrqAccelerator::transitions(&[false; 8]), 0);
        assert_eq!(DrqAccelerator::transitions(&[]), 0);
    }

    #[test]
    fn all_low_beats_bitfusion_int8_by_about_2x() {
        let w = workload_with_high_fraction(1024, 0.0, false);
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let c_drq = drq.execute(&w).unwrap().compute_cycles;
        let mut bf = BitFusion::int8().unwrap();
        let hi = GemmWorkload::uniform("hi", w.shape(), false);
        let c_bf = bf.execute(&hi).unwrap().compute_cycles;
        let ratio = c_bf as f64 / c_drq as f64;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn high_fraction_erodes_speedup() {
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let lo = drq
            .execute(&workload_with_high_fraction(1024, 0.1, true))
            .unwrap()
            .compute_cycles;
        let hi = drq
            .execute(&workload_with_high_fraction(1024, 0.5, true))
            .unwrap()
            .compute_cycles;
        assert!(hi > lo);
    }

    #[test]
    fn interleaving_costs_more_than_blocked() {
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let blocked = drq
            .execute(&workload_with_high_fraction(1024, 0.3, false))
            .unwrap();
        let interleaved = drq
            .execute(&workload_with_high_fraction(1024, 0.3, true))
            .unwrap();
        assert!(
            interleaved.compute_cycles > blocked.compute_cycles,
            "interleaved {} !> blocked {}",
            interleaved.compute_cycles,
            blocked.compute_cycles
        );
        assert!(interleaved.stall_cycles > blocked.stall_cycles);
    }

    #[test]
    fn weights_are_static_8bit_in_traffic() {
        // Even if the workload claims 4-bit weights, DRQ moves 8-bit
        // weights.
        let w = workload_with_high_fraction(256, 0.0, false);
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let r = drq.execute(&w).unwrap();
        // DRQ's DRAM energy strictly exceeds a hypothetical 4-bit-weight
        // design's (compare against BitFusion INT4 traffic on the same
        // workload, whose weights are half the bytes).
        let mut bf4 = BitFusion::int4().unwrap();
        let r4 = bf4.execute(&w).unwrap();
        assert!(r.energy.dram_pj > r4.energy.dram_pj);
    }

    #[test]
    fn zero_bubble_config_only_pays_occupancy() {
        let geo = paper_geometry();
        let mut drq = DrqAccelerator::new(geo, 0).unwrap();
        let w = workload_with_high_fraction(512, 0.25, true);
        let r = drq.execute(&w).unwrap();
        // Stalls = extra occupancy slots only: 128 high rows x 1 extra
        // slot per pass.
        let k_passes = (4u64 * 512).div_ceil(4 * geo.rows as u64);
        let n_passes = (8u64 * 512).div_ceil(16 * geo.cols as u64);
        assert_eq!(r.stall_cycles, 128 * k_passes * n_passes);
    }
}
