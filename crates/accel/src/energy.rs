//! The energy model and the static/DRAM/buffer/core breakdown of paper
//! Fig. 8.
//!
//! Constants are inspired by published 40/45 nm accelerator numbers
//! (Eyeriss and BitFusion report per-op and per-access energies at
//! comparable nodes). Only *relative* magnitudes matter for reproducing
//! Fig. 8, which normalises everything to Eyeriss; the table below is
//! tabulated in one place so a user can re-calibrate against their own
//! PDK.
//!
//! | quantity | constant | value |
//! | --- | --- | --- |
//! | BitGroup active cycle (16 BitBrick MACs + accumulate) | `e_bg_cycle_pj` | 1.0 pJ |
//! | FP32 MAC (Eyeriss PE) | `e_fp32_mac_pj` | 3.8 pJ |
//! | SRAM access | see [`crate::memory`] | ~2 pJ/B |
//! | DRAM access | see [`crate::dram`] | ~15 pJ/B |
//! | static power, BitGroup-class unit | `static_pj_per_unit_cycle` | 0.75 pJ/cycle |
//! | static power, Eyeriss FP32 PE | `static_pj_per_fp32_pe_cycle` | 1.6 pJ/cycle |

use serde::{Deserialize, Serialize};

/// Energy constants shared by all simulated accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy of one BitGroup doing useful work for one cycle
    /// (16 BitBrick 1×4-bit products plus the accumulate network), pJ.
    pub e_bg_cycle_pj: f64,
    /// Dynamic energy of one FP32 multiply-accumulate, pJ.
    pub e_fp32_mac_pj: f64,
    /// Leakage per BitGroup-class unit per cycle, pJ.
    pub static_pj_per_unit_cycle: f64,
    /// Leakage per Eyeriss-class FP32 PE per cycle, pJ.
    pub static_pj_per_fp32_pe_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            e_bg_cycle_pj: 1.0,
            e_fp32_mac_pj: 3.8,
            static_pj_per_unit_cycle: 0.75,
            static_pj_per_fp32_pe_cycle: 1.6,
        }
    }
}

/// The four-way energy breakdown the paper reports in Fig. 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Leakage over the whole execution, pJ.
    pub static_pj: f64,
    /// DRAM dynamic energy, pJ.
    pub dram_pj: f64,
    /// On-chip buffer dynamic energy, pJ.
    pub buffer_pj: f64,
    /// Compute-core dynamic energy, pJ.
    pub core_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.static_pj + self.dram_pj + self.buffer_pj + self.core_pj
    }

    /// Each component as a fraction of the total (zeros when total is
    /// zero), in (static, dram, buffer, core) order.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_pj();
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.static_pj / t,
            self.dram_pj / t,
            self.buffer_pj / t,
            self.core_pj / t,
        ]
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            static_pj: self.static_pj + other.static_pj,
            dram_pj: self.dram_pj + other.dram_pj,
            buffer_pj: self.buffer_pj + other.buffer_pj,
            core_pj: self.core_pj + other.core_pj,
        }
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> Self {
        iter.fold(EnergyBreakdown::default(), |acc, e| acc.add(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_fractions() {
        let e = EnergyBreakdown {
            static_pj: 40.0,
            dram_pj: 30.0,
            buffer_pj: 10.0,
            core_pj: 20.0,
        };
        assert_eq!(e.total_pj(), 100.0);
        let f = e.fractions();
        assert!((f[0] - 0.4).abs() < 1e-12);
        assert!((f[1] - 0.3).abs() < 1e-12);
        assert!((f[2] - 0.1).abs() < 1e-12);
        assert!((f[3] - 0.2).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_has_zero_fractions() {
        assert_eq!(EnergyBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn add_and_sum() {
        let a = EnergyBreakdown {
            static_pj: 1.0,
            dram_pj: 2.0,
            buffer_pj: 3.0,
            core_pj: 4.0,
        };
        let b = a.add(&a);
        assert_eq!(b.total_pj(), 20.0);
        let s: EnergyBreakdown = vec![a, a, a].into_iter().sum();
        assert_eq!(s.total_pj(), 30.0);
    }

    #[test]
    fn default_model_is_ordered_sensibly() {
        let m = EnergyModel::default();
        // An FP32 MAC costs much more than a BitGroup cycle, and leakage
        // per unit is below dynamic per-cycle energy.
        assert!(m.e_fp32_mac_pj > m.e_bg_cycle_pj);
        assert!(m.static_pj_per_unit_cycle < m.e_bg_cycle_pj);
        assert!(m.static_pj_per_fp32_pe_cycle < m.e_fp32_mac_pj);
    }
}
