//! The [`Accelerator`] trait and shared execution machinery.
//!
//! Every simulated design — Eyeriss, BitFusion, DRQ, and Drift (in
//! `drift-core`) — executes [`GemmWorkload`]s and produces an
//! [`ExecReport`] with cycles and the Fig. 8 energy breakdown. The
//! memory-side behaviour (DRAM streaming, buffer accesses, double
//! buffering) is identical across designs and lives in
//! [`MemorySubsystem`] so comparisons isolate the compute architecture.

use crate::dram::{DramConfig, DramSim};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::gemm::GemmWorkload;
use crate::memory::BufferSet;
use crate::Result;
use drift_obs::Recorder;
use serde::{Deserialize, Serialize};

/// The result of executing one workload on one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Workload name.
    pub workload: String,
    /// Accelerator name.
    pub accelerator: String,
    /// End-to-end cycles for the layer (compute and DRAM overlap under
    /// double buffering; the slower side dominates).
    pub cycles: u64,
    /// Compute-side cycles.
    pub compute_cycles: u64,
    /// DRAM-side cycles.
    pub dram_cycles: u64,
    /// Cycles lost to dataflow stalls (zero for stall-free designs).
    pub stall_cycles: u64,
    /// Unit-busy cycles (for utilization and core energy).
    pub busy_unit_cycles: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl ExecReport {
    /// Compute-array utilization: busy unit-cycles over available
    /// unit-cycles.
    pub fn utilization(&self, units: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.busy_unit_cycles as f64 / (self.cycles as f64 * units as f64)
    }
}

/// Aggregates reports across a model's layers.
pub fn total_report(name: &str, accelerator: &str, layers: &[ExecReport]) -> ExecReport {
    ExecReport {
        workload: name.to_string(),
        accelerator: accelerator.to_string(),
        cycles: layers.iter().map(|r| r.cycles).sum(),
        compute_cycles: layers.iter().map(|r| r.compute_cycles).sum(),
        dram_cycles: layers.iter().map(|r| r.dram_cycles).sum(),
        stall_cycles: layers.iter().map(|r| r.stall_cycles).sum(),
        busy_unit_cycles: layers.iter().map(|r| r.busy_unit_cycles).sum(),
        energy: layers.iter().map(|r| r.energy).sum(),
    }
}

/// A simulated DNN accelerator.
pub trait Accelerator {
    /// A short, stable name for reports.
    fn name(&self) -> &str;

    /// Number of compute units (PEs or BitGroups) in the engine.
    fn units(&self) -> usize;

    /// Executes a workload, returning its report.
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::AccelError`] for workloads they
    /// cannot map (e.g. unsupported precisions).
    fn execute(&mut self, workload: &GemmWorkload) -> Result<ExecReport>;
}

/// Per-layer DRAM/buffer traffic report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// DRAM-side cycles for this layer's traffic.
    pub dram_cycles: u64,
    /// DRAM dynamic energy for this layer, pJ.
    pub dram_pj: f64,
    /// Buffer dynamic energy for this layer, pJ.
    pub buffer_pj: f64,
}

/// The memory subsystem shared by all designs: DRAM + three on-chip
/// buffers.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    /// The DRAM simulator.
    pub dram: DramSim,
    /// The buffer hierarchy.
    pub buffers: BufferSet,
    /// Metrics sink for DRAM/buffer counters (disabled by default).
    recorder: Recorder,
}

impl MemorySubsystem {
    /// Creates the default subsystem.
    ///
    /// # Errors
    ///
    /// Propagates DRAM configuration errors.
    pub fn new() -> Result<Self> {
        Ok(MemorySubsystem {
            dram: DramSim::new(DramConfig::default())?,
            buffers: BufferSet::drift_default(),
            recorder: Recorder::disabled(),
        })
    }

    /// Routes this subsystem's DRAM and energy counters (row hits and
    /// conflicts, read/write bytes, per-stage energy) to `recorder`.
    /// Recording never changes simulated traffic or timings; with the
    /// default disabled recorder every metric call is a no-op.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Returns the subsystem to its just-constructed state (DRAM rows
    /// closed, allocator rewound, all counters zeroed) without
    /// re-validating the configuration. Workloads simulated after a
    /// reset see exactly the traffic a fresh subsystem would report,
    /// which lets long-lived simulators (e.g. worker-pool workers) keep
    /// per-job results independent of job history.
    pub fn reset(&mut self) {
        self.dram.reset();
        self.buffers.reset();
    }

    /// Simulates one layer's data movement:
    ///
    /// * weights stream in from DRAM exactly once (the weight-stationary
    ///   schedule processes them in tiles when they exceed the weight
    ///   buffer — tiling never re-reads a weight from DRAM);
    /// * activations stream in once when they fit in the global buffer;
    ///   otherwise they must be re-fetched once per weight tile;
    /// * the array reads activations `act_reread` times from the global
    ///   buffer (once per column-pass group) and weights once;
    /// * outputs are written to the global buffer and drained to DRAM.
    pub fn layer_traffic(
        &mut self,
        act_bytes: u64,
        weight_bytes: u64,
        output_bytes: u64,
        index_bytes: u64,
        act_reread: u64,
    ) -> TrafficReport {
        let buffer_pj_before = self.buffers.energy_pj();
        let stats_before = self.dram.stats();
        let dram_pj_before = stats_before.energy_pj;

        let weight_tiles = self.buffers.weight.refetch_factor(weight_bytes);
        let act_dram_rounds = if act_bytes <= self.buffers.global.capacity_bytes() {
            1
        } else {
            weight_tiles
        };
        let mut dram_cycles = 0u64;

        // DRAM → on-chip fills.
        let act_addr = self.dram.allocate(act_bytes);
        for _ in 0..act_dram_rounds {
            dram_cycles += self.dram.stream(act_addr, act_bytes, false);
            self.buffers.global.write(act_bytes);
        }

        let weight_addr = self.dram.allocate(weight_bytes);
        dram_cycles += self.dram.stream(weight_addr, weight_bytes, false);
        self.buffers.weight.write(weight_bytes);

        let index_addr = self.dram.allocate(index_bytes.max(1));
        dram_cycles += self.dram.stream(index_addr, index_bytes, false);
        self.buffers.index.write(index_bytes);

        // On-chip → array feeds.
        self.buffers
            .global
            .read(act_bytes * act_reread.max(act_dram_rounds));
        self.buffers.weight.read(weight_bytes);
        self.buffers.index.read(index_bytes);

        // Array → on-chip → DRAM drain.
        self.buffers.global.write(output_bytes);
        self.buffers.global.read(output_bytes);
        let out_addr = self.dram.allocate(output_bytes);
        dram_cycles += self.dram.stream(out_addr, output_bytes, true);

        let report = TrafficReport {
            dram_cycles,
            dram_pj: self.dram.stats().energy_pj - dram_pj_before,
            buffer_pj: self.buffers.energy_pj() - buffer_pj_before,
        };
        if self.recorder.is_enabled() {
            let after = self.dram.stats();
            self.recorder.counter_add(
                "drift_dram_row_hits_total",
                &[],
                after.row_hits - stats_before.row_hits,
            );
            self.recorder.counter_add(
                "drift_dram_row_conflicts_total",
                &[],
                after.row_misses - stats_before.row_misses,
            );
            self.recorder.counter_add(
                "drift_dram_bytes_total",
                &[("dir", "read")],
                after.read_bytes - stats_before.read_bytes,
            );
            self.recorder.counter_add(
                "drift_dram_bytes_total",
                &[("dir", "write")],
                after.write_bytes - stats_before.write_bytes,
            );
            self.recorder.fcounter_add(
                "drift_energy_picojoules_total",
                &[("stage", "dram")],
                report.dram_pj,
            );
            self.recorder.fcounter_add(
                "drift_energy_picojoules_total",
                &[("stage", "buffer")],
                report.buffer_pj,
            );
        }
        report
    }

    /// The standard traffic of a quantized workload: byte counts from the
    /// workload's precision maps.
    pub fn workload_traffic(&mut self, w: &GemmWorkload, act_reread: u64) -> TrafficReport {
        self.layer_traffic(
            w.act_bytes(),
            w.weight_bytes(),
            w.output_bytes(),
            w.index_bytes(),
            act_reread,
        )
    }
}

/// Combines compute and traffic into a final report, adding static
/// energy from the model. Compute and DRAM overlap (double buffering):
/// the layer takes the maximum of the two sides.
#[allow(clippy::too_many_arguments)]
pub fn finish_report(
    accelerator: &str,
    workload: &GemmWorkload,
    compute_cycles: u64,
    stall_cycles: u64,
    busy_unit_cycles: u64,
    core_pj: f64,
    traffic: TrafficReport,
    units: usize,
    static_pj_per_unit_cycle: f64,
) -> ExecReport {
    let cycles = compute_cycles.max(traffic.dram_cycles);
    let energy = EnergyBreakdown {
        static_pj: static_pj_per_unit_cycle * units as f64 * cycles as f64,
        dram_pj: traffic.dram_pj,
        buffer_pj: traffic.buffer_pj,
        core_pj,
    };
    ExecReport {
        workload: workload.name().to_string(),
        accelerator: accelerator.to_string(),
        cycles,
        compute_cycles,
        dram_cycles: traffic.dram_cycles,
        stall_cycles,
        busy_unit_cycles,
        energy,
    }
}

/// Convenience: the default energy model.
pub fn default_energy_model() -> EnergyModel {
    EnergyModel::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;

    #[test]
    fn traffic_accounts_energy_and_cycles() {
        let mut mem = MemorySubsystem::new().unwrap();
        let shape = GemmShape::new(64, 128, 64).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let t = mem.workload_traffic(&w, 1);
        assert!(t.dram_cycles > 0);
        assert!(t.dram_pj > 0.0);
        assert!(t.buffer_pj > 0.0);
    }

    #[test]
    fn low_precision_moves_fewer_bytes() {
        let shape = GemmShape::new(64, 128, 64).unwrap();
        let mut mem_hi = MemorySubsystem::new().unwrap();
        let hi = mem_hi.workload_traffic(&GemmWorkload::uniform("h", shape, false), 1);
        let mut mem_lo = MemorySubsystem::new().unwrap();
        let lo = mem_lo.workload_traffic(&GemmWorkload::uniform("l", shape, true), 1);
        assert!(lo.dram_pj < hi.dram_pj);
        assert!(lo.dram_cycles <= hi.dram_cycles);
    }

    #[test]
    fn reread_factor_scales_buffer_energy() {
        let shape = GemmShape::new(64, 128, 64).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let mut mem1 = MemorySubsystem::new().unwrap();
        let t1 = mem1.workload_traffic(&w, 1);
        let mut mem4 = MemorySubsystem::new().unwrap();
        let t4 = mem4.workload_traffic(&w, 4);
        assert!(t4.buffer_pj > t1.buffer_pj);
        // DRAM traffic is unchanged by on-chip rereads.
        assert!((t4.dram_pj - t1.dram_pj).abs() < 1e-9);
    }

    #[test]
    fn finish_report_overlaps_compute_and_dram() {
        let shape = GemmShape::new(8, 8, 8).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let traffic = TrafficReport {
            dram_cycles: 100,
            dram_pj: 1.0,
            buffer_pj: 1.0,
        };
        let r = finish_report("x", &w, 40, 0, 10, 5.0, traffic, 10, 0.1);
        assert_eq!(r.cycles, 100); // DRAM-bound
        let r2 = finish_report("x", &w, 400, 0, 10, 5.0, traffic, 10, 0.1);
        assert_eq!(r2.cycles, 400); // compute-bound
        assert!((r2.energy.static_pj - 0.1 * 10.0 * 400.0).abs() < 1e-9);
    }

    #[test]
    fn total_report_sums_layers() {
        let shape = GemmShape::new(8, 8, 8).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let traffic = TrafficReport {
            dram_cycles: 10,
            dram_pj: 1.0,
            buffer_pj: 2.0,
        };
        let r = finish_report("x", &w, 40, 3, 10, 5.0, traffic, 10, 0.1);
        let total = total_report("model", "x", &[r.clone(), r]);
        assert_eq!(total.cycles, 80);
        assert_eq!(total.stall_cycles, 6);
        assert!((total.energy.core_pj - 10.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_bounded() {
        let shape = GemmShape::new(8, 8, 8).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let traffic = TrafficReport {
            dram_cycles: 0,
            dram_pj: 0.0,
            buffer_pj: 0.0,
        };
        let r = finish_report("x", &w, 100, 0, 500, 0.0, traffic, 10, 0.0);
        let u = r.utilization(10);
        assert!(u > 0.0 && u <= 1.0);
    }
}
