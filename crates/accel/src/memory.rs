//! On-chip SRAM buffer models.
//!
//! Drift's memory hierarchy (paper Section 4.1) has three buffers: a
//! *global buffer* for activations and outputs, a *weight buffer*, and an
//! *index buffer* tracking the precision of data at specific positions
//! (the reference the dispatcher uses to steer sub-tensors to the right
//! systolic array). The baselines use the same global/weight split.
//!
//! The model tracks access counts and energy; capacity determines how
//! many times a layer's working set must be refetched from DRAM.

use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};

/// One SRAM buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramBuffer {
    name: String,
    capacity_bytes: u64,
    read_pj_per_byte: f64,
    write_pj_per_byte: f64,
    read_bytes: u64,
    write_bytes: u64,
}

impl SramBuffer {
    /// Creates a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if the capacity is zero or
    /// an energy constant is negative.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        read_pj_per_byte: f64,
        write_pj_per_byte: f64,
    ) -> Result<Self> {
        if capacity_bytes == 0 {
            return Err(AccelError::InvalidConfig {
                name: "sram capacity",
                detail: "must be positive".to_string(),
            });
        }
        if read_pj_per_byte < 0.0 || write_pj_per_byte < 0.0 {
            return Err(AccelError::InvalidConfig {
                name: "sram energy",
                detail: "energy constants must be non-negative".to_string(),
            });
        }
        Ok(SramBuffer {
            name: name.into(),
            capacity_bytes,
            read_pj_per_byte,
            write_pj_per_byte,
            read_bytes: 0,
            write_bytes: 0,
        })
    }

    /// Buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.read_bytes += bytes;
    }

    /// Records a write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        self.write_bytes += bytes;
    }

    /// Bytes read so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written so far.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total access energy in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.read_bytes as f64 * self.read_pj_per_byte
            + self.write_bytes as f64 * self.write_pj_per_byte
    }

    /// How many DRAM fetch rounds a working set of `bytes` needs given
    /// this buffer's capacity (1 when it fits).
    pub fn refetch_factor(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.capacity_bytes).max(1)
    }

    /// Clears the access counters.
    pub fn reset(&mut self) {
        self.read_bytes = 0;
        self.write_bytes = 0;
    }
}

/// The three-buffer hierarchy of Drift's Section 4.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSet {
    /// Global (activation/output) buffer.
    pub global: SramBuffer,
    /// Weight buffer.
    pub weight: SramBuffer,
    /// Precision index buffer.
    pub index: SramBuffer,
}

impl BufferSet {
    /// The default configuration used by all 792-unit accelerators in
    /// the evaluation: 128 KiB global, 256 KiB weight, 8 KiB index, with
    /// 40 nm-class access energies (~2 pJ/byte).
    pub fn drift_default() -> Self {
        BufferSet {
            global: SramBuffer::new("global", 128 << 10, 2.2, 2.6).expect("constants are valid"),
            weight: SramBuffer::new("weight", 256 << 10, 2.0, 2.4).expect("constants are valid"),
            index: SramBuffer::new("index", 8 << 10, 0.6, 0.8).expect("constants are valid"),
        }
    }

    /// Total access energy across the three buffers, in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.global.energy_pj() + self.weight.energy_pj() + self.index.energy_pj()
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.global.reset();
        self.weight.reset();
        self.index.reset();
    }
}

impl Default for BufferSet {
    fn default() -> Self {
        BufferSet::drift_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SramBuffer::new("b", 0, 1.0, 1.0).is_err());
        assert!(SramBuffer::new("b", 10, -1.0, 1.0).is_err());
        assert!(SramBuffer::new("b", 10, 1.0, 1.0).is_ok());
    }

    #[test]
    fn energy_accounting() {
        let mut b = SramBuffer::new("t", 1024, 2.0, 3.0).unwrap();
        b.read(10);
        b.write(5);
        assert_eq!(b.read_bytes(), 10);
        assert_eq!(b.write_bytes(), 5);
        assert!((b.energy_pj() - 35.0).abs() < 1e-12);
        b.reset();
        assert_eq!(b.energy_pj(), 0.0);
    }

    #[test]
    fn refetch_factor() {
        let b = SramBuffer::new("t", 1000, 1.0, 1.0).unwrap();
        assert_eq!(b.refetch_factor(0), 1);
        assert_eq!(b.refetch_factor(1000), 1);
        assert_eq!(b.refetch_factor(1001), 2);
        assert_eq!(b.refetch_factor(5000), 5);
    }

    #[test]
    fn buffer_set_totals() {
        let mut set = BufferSet::drift_default();
        set.global.read(100);
        set.weight.write(100);
        set.index.read(100);
        assert!(set.energy_pj() > 0.0);
        set.reset();
        assert_eq!(set.energy_pj(), 0.0);
    }

    #[test]
    fn default_matches_drift_default() {
        let d = BufferSet::default();
        assert_eq!(d.global.capacity_bytes(), 128 << 10);
        assert_eq!(d.weight.capacity_bytes(), 256 << 10);
        assert_eq!(d.index.capacity_bytes(), 8 << 10);
    }
}
