//! Property-based tests for the accelerator simulation substrate.

use drift_accel::accelerator::Accelerator;
use drift_accel::bitfusion::BitFusion;
use drift_accel::dram::{DramConfig, DramSim};
use drift_accel::drq::DrqAccelerator;
use drift_accel::eyeriss::Eyeriss;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_accel::systolic::{
    analytical_cycles, fused_occupancy, pass_count, simulate_stream, ArrayGeometry,
};
use drift_quant::Precision;
use proptest::prelude::*;

proptest! {
    /// Stream latency is monotone in occupancy: widening any element's
    /// occupancy never speeds the pass up.
    #[test]
    fn stream_monotone_in_occupancy(
        occ in proptest::collection::vec(1u32..4, 1..100),
        bump in 0usize..100,
        rows in 1usize..16,
        cols in 1usize..16,
    ) {
        let geo = ArrayGeometry::new(rows, cols).unwrap();
        let base = simulate_stream(&occ, geo, 1);
        let mut widened = occ.clone();
        let idx = bump % widened.len();
        widened[idx] += 1;
        let more = simulate_stream(&widened, geo, 1);
        prop_assert_eq!(more.total_cycles, base.total_cycles + 1);
        prop_assert_eq!(more.stall_cycles, base.stall_cycles + 1);
        prop_assert!(more.busy_bg_cycles > base.busy_bg_cycles);
    }

    /// Pass counts and Eq. 7 latency are monotone in every GEMM
    /// dimension.
    #[test]
    fn eq7_monotone_in_dimensions(
        m in 1usize..200,
        k in 1usize..1000,
        n in 1usize..1000,
    ) {
        let geo = ArrayGeometry::new(24, 33).unwrap();
        let s = GemmShape::new(m, k, n).unwrap();
        let bigger = GemmShape::new(m + 1, k + 16, n + 16).unwrap();
        let (pa, pw) = (Precision::INT8, Precision::INT8);
        prop_assert!(pass_count(bigger, pa, pw, geo) >= pass_count(s, pa, pw, geo));
        prop_assert!(
            analytical_cycles(bigger, pa, pw, geo) >= analytical_cycles(s, pa, pw, geo)
        );
    }

    /// Fused occupancy is 1 exactly when the fused widths cover the
    /// data widths.
    #[test]
    fn fused_occupancy_covers(pa in 1u8..=8, pw in 1u8..=8, fa in 1u8..=8, fw in 1u8..=8) {
        let occ = fused_occupancy(
            Precision::new(pa).unwrap(),
            Precision::new(pw).unwrap(),
            Precision::new(fa).unwrap(),
            Precision::new(fw).unwrap(),
        );
        if pa <= fa && pw <= fw {
            prop_assert_eq!(occ, 1);
        } else {
            prop_assert!(occ > 1);
        }
    }

    /// The DRAM simulator accounts every byte exactly once and its
    /// latency is monotone in transfer size.
    #[test]
    fn dram_byte_conservation(bytes in 1u64..(1 << 18), write in any::<bool>()) {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        let c1 = dram.stream(0, bytes, write);
        prop_assert_eq!(dram.stats().total_bytes(), bytes);
        prop_assert!(c1 > 0);
        let mut dram2 = DramSim::new(DramConfig::default()).unwrap();
        let c2 = dram2.stream(0, bytes * 2, write);
        prop_assert!(c2 >= c1);
        // Hits + misses = bursts.
        let bursts = bytes.div_ceil(64);
        prop_assert_eq!(dram.stats().row_hits + dram.stats().row_misses, bursts);
    }

    /// Every accelerator produces internally consistent reports on
    /// random workloads: positive cycles, all energy terms set, and
    /// total cycles at least both compute and DRAM sides.
    #[test]
    fn reports_are_consistent(
        m in 1usize..300,
        k in 8usize..512,
        n in 8usize..512,
        frac in 0.0f64..1.0,
    ) {
        let shape = GemmShape::new(m, k, n).unwrap();
        let high = (m as f64 * frac) as usize;
        let w = GemmWorkload::new(
            "prop",
            shape,
            (0..m).map(|i| i < high).collect(),
            vec![false; n],
        )
        .unwrap();
        let uniform = GemmWorkload::uniform("u", shape, false);

        let mut eyeriss = Eyeriss::paper_config().unwrap();
        let mut bitfusion = BitFusion::int8().unwrap();
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let reports = [
            eyeriss.execute(&uniform).unwrap(),
            bitfusion.execute(&uniform).unwrap(),
            drq.execute(&w).unwrap(),
        ];
        for r in &reports {
            prop_assert!(r.cycles > 0);
            prop_assert!(r.cycles >= r.compute_cycles.max(r.dram_cycles).min(r.cycles));
            prop_assert!(r.energy.total_pj() > 0.0);
            prop_assert!(r.energy.static_pj > 0.0);
            prop_assert!(r.busy_unit_cycles > 0);
        }
        // BitFusion INT8 is stall-free on uniform streams; DRQ stalls
        // exactly when high-precision rows exist.
        prop_assert_eq!(reports[1].stall_cycles, 0);
        if high == 0 {
            prop_assert_eq!(reports[2].stall_cycles, 0);
        }
    }

    /// Low-precision workloads never move more bytes than high.
    #[test]
    fn byte_monotonicity(m in 1usize..100, k in 8usize..256, n in 8usize..256) {
        let shape = GemmShape::new(m, k, n).unwrap();
        let hi = GemmWorkload::uniform("hi", shape, false);
        let lo = GemmWorkload::uniform("lo", shape, true);
        prop_assert!(lo.act_bytes() <= hi.act_bytes());
        prop_assert!(lo.weight_bytes() <= hi.weight_bytes());
        // Quadrant MACs always partition the GEMM.
        let mixed = GemmWorkload::new(
            "m",
            shape,
            (0..m).map(|i| i % 3 == 0).collect(),
            (0..n).map(|j| j % 2 == 0).collect(),
        )
        .unwrap();
        let total: u64 = mixed.quadrants().iter().map(|q| q.macs()).sum();
        prop_assert_eq!(total, shape.macs());
    }
}
