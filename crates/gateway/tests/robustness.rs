//! Failure-path behaviour of the gateway: overload sheds instead of
//! hanging, deadlines expire with structured errors, client
//! disconnects stay contained, and a graceful drain answers every
//! accepted job.

use drift_gateway::client::Client;
use drift_gateway::protocol::{Response, ERR_DEADLINE, ERR_OVERLOADED};
use drift_gateway::server::{Gateway, GatewayConfig};
use drift_obs::Recorder;
use drift_serve::job::{JobKind, JobSpec};
use std::collections::BTreeSet;

/// A job small enough to stay fast in debug builds.
fn quick_spec(id: u64) -> JobSpec {
    JobSpec {
        id,
        seed: id + 1,
        kind: JobKind::Schedule {
            m: 64,
            k: 128,
            n: 64,
            fa: 0.25,
            fw: 0.5,
        },
    }
}

/// A cycle-accurate simulation big enough to keep a worker busy for a
/// while, so queues actually fill and deadlines actually pass.
fn heavy_spec(id: u64) -> JobSpec {
    JobSpec {
        id,
        seed: id + 1,
        kind: JobKind::Simulate {
            m: 96,
            k: 384,
            n: 96,
            fa: 0.5,
            fw: 0.5,
        },
    }
}

#[test]
fn full_queue_sheds_with_overloaded_and_answers_every_request() {
    const REQUESTS: u64 = 16;
    let mut config = GatewayConfig::with_workers(1);
    config.queue_depth = 1;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();

    // Pipeline everything at once: the single worker cannot keep up,
    // so most requests must shed — and none may go unanswered.
    for id in 0..REQUESTS {
        client.send(&heavy_spec(id), None).unwrap();
    }
    let mut ok_ids = BTreeSet::new();
    let mut shed = 0u64;
    for _ in 0..REQUESTS {
        match client.recv().unwrap() {
            Response::Result(r) => {
                assert!(ok_ids.insert(r.id), "duplicate result id {}", r.id);
            }
            Response::Error { id, error } => {
                assert_eq!(error, ERR_OVERLOADED);
                assert!(id.is_some(), "shed responses must carry the job id");
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok_ids.len() as u64 + shed, REQUESTS);
    assert!(shed > 0, "queue_depth=1 under a pipelined burst must shed");

    let summary = gw.shutdown();
    assert_eq!(summary.accepted, ok_ids.len() as u64);
    assert_eq!(summary.shed, shed);
}

#[test]
fn stale_requests_expire_with_deadline_exceeded() {
    let mut config = GatewayConfig::with_workers(1);
    config.queue_depth = 8;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();

    // Three heavy jobs occupy the single worker; the budgeted request
    // queues behind them, so its 1 ms deadline has long passed when a
    // worker finally dequeues it.
    for id in 0..3 {
        client.send(&heavy_spec(id), None).unwrap();
    }
    client.send(&quick_spec(99), Some(1)).unwrap();

    let mut expired = Vec::new();
    for _ in 0..4 {
        match client.recv().unwrap() {
            Response::Result(_) => {}
            Response::Error { id, error } => {
                assert_eq!(error, ERR_DEADLINE);
                expired.push(id);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(expired, vec![Some(99)]);
    assert_eq!(gw.shutdown().expired, 1);
}

#[test]
fn mid_stream_disconnect_does_not_kill_the_server() {
    let gw = Gateway::start(
        "127.0.0.1:0",
        GatewayConfig::with_workers(1),
        Recorder::disabled(),
    )
    .unwrap();
    let addr = gw.local_addr().to_string();

    // First client submits work and vanishes without reading responses.
    let mut doomed = Client::connect(&addr).unwrap();
    doomed.send(&heavy_spec(0), None).unwrap();
    doomed.send(&quick_spec(1), None).unwrap();
    drop(doomed);

    // The server keeps serving fresh connections.
    let mut client = Client::connect(&addr).unwrap();
    assert!(client.ping().unwrap());
    match client.submit(&quick_spec(2), None).unwrap() {
        Response::Result(r) => assert_eq!(r.id, 2),
        other => panic!("unexpected response {other:?}"),
    }

    let summary = gw.shutdown();
    assert_eq!(summary.connections, 2);
    assert_eq!(summary.accepted, 3, "{}", summary.render());
}

#[test]
fn graceful_drain_answers_every_accepted_job() {
    const JOBS: u64 = 32;
    let mut config = GatewayConfig::with_workers(2);
    config.queue_depth = JOBS as usize * 2;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();

    for id in 0..JOBS {
        client.send(&quick_spec(id), None).unwrap();
    }
    // The ping ack proves the reader has admitted all the job lines
    // queued ahead of it, so a shutdown from here on may not lose any.
    client.send_raw("{\"control\":\"ping\"}").unwrap();
    let mut results = BTreeSet::new();
    loop {
        match client.recv().unwrap() {
            Response::Control { op, ok, .. } => {
                assert_eq!(op, "ping");
                assert!(ok);
                break;
            }
            Response::Result(r) => {
                assert!(results.insert(r.id));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    let drainer = std::thread::spawn(move || gw.shutdown());
    while results.len() < JOBS as usize {
        match client.recv().unwrap() {
            Response::Result(r) => {
                assert!(results.insert(r.id), "duplicate result id {}", r.id);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let summary = drainer.join().unwrap();
    assert_eq!(summary.accepted, JOBS);
    assert_eq!(summary.dropped, 0);
    assert_eq!(results, (0..JOBS).collect::<BTreeSet<_>>());
}
