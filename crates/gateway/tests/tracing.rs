//! Distributed tracing through the gateway: spans must reconstruct a
//! full per-request waterfall (request → queue_wait → execute →
//! serve-tier children → response_write) with zero orphans, the
//! sampled trace-id set must be the pure function of `(seed, arrival
//! sequence)`, and — the acceptance bar — tracing on vs. off must be
//! invisible in the result bytes.

use drift_gateway::loadgen::{self, LoadGenConfig};
use drift_gateway::server::{Gateway, GatewayConfig};
use drift_obs::{Recorder, Tracer};
use drift_serve::job::result_line;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::Write;
use std::sync::{Arc, Mutex};

const JOBS: usize = 120;
const SHAPES: usize = 4;
const SEED: u64 = 42;
const TRACE_SEED: u64 = 5;

/// A cloneable in-memory span sink for [`Tracer::to_writer`].
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn field(line: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = start + line[start..].find('"')?;
    Some(line[start..end].to_string())
}

fn drive(tracer: Tracer) -> (Vec<String>, u64) {
    let mut config = GatewayConfig::with_workers(4);
    config.queue_depth = JOBS; // deep enough that nothing sheds
    let gw = Gateway::start_traced("127.0.0.1:0", config, Recorder::disabled(), tracer).unwrap();
    let addr = gw.local_addr().to_string();
    let load = LoadGenConfig {
        clients: 4,
        jobs: JOBS,
        shapes: SHAPES,
        seed: SEED,
        ..LoadGenConfig::default()
    };
    let report = loadgen::run(&addr, &load).unwrap();
    report.verify_complete().unwrap();
    assert_eq!(report.ok, JOBS as u64, "{}", report.render());
    let summary = gw.shutdown();
    (
        report.results.iter().map(result_line).collect(),
        summary.accepted,
    )
}

#[test]
fn tracing_does_not_change_gateway_results() {
    let (plain, _) = drive(Tracer::disabled());
    let sink = SharedBuf::default();
    let tracer = Tracer::to_writer(
        Box::new(sink.clone()),
        "gateway",
        1,
        TRACE_SEED,
        Recorder::disabled(),
    );
    let (traced, accepted) = drive(tracer.clone());
    tracer.flush();
    assert_eq!(plain, traced, "tracing changed the result bytes");

    let text = sink.text();
    // Group spans by trace: (span id, parent, svc.stage) triples.
    let mut traces: HashMap<String, Vec<(String, Option<String>, String)>> = HashMap::new();
    for line in text.lines() {
        let trace = field(line, "trace").expect("span missing trace id");
        let hop = format!(
            "{}.{}",
            field(line, "svc").unwrap(),
            field(line, "stage").unwrap()
        );
        traces.entry(trace).or_default().push((
            field(line, "span").unwrap(),
            field(line, "parent"),
            hop,
        ));
    }

    // Sampling 1 in 1: every accepted request is a distinct trace.
    assert_eq!(accepted, JOBS as u64);
    assert_eq!(traces.len(), JOBS, "one trace per accepted request");

    // The sampled id set is the pure function of (seed, arrival seq).
    let expected: BTreeSet<String> = (0u64..JOBS as u64)
        .map(|seq| Tracer::trace_id_for(TRACE_SEED, seq).to_string())
        .collect();
    let sampled: BTreeSet<String> = traces.keys().cloned().collect();
    assert_eq!(sampled, expected);

    for (trace, spans) in &traces {
        // Full waterfall: every gateway hop present, plus at least one
        // serve-tier child recorded under service `serve`.
        let hops: HashSet<&str> = spans.iter().map(|(_, _, hop)| hop.as_str()).collect();
        for hop in [
            "gateway.request",
            "gateway.queue_wait",
            "gateway.execute",
            "gateway.response_write",
        ] {
            assert!(hops.contains(hop), "trace {trace} missing {hop}: {hops:?}");
        }
        assert!(
            hops.iter().any(|h| h.starts_with("serve.")),
            "trace {trace} has no serve-tier span: {hops:?}"
        );
        // Zero orphans: every recorded parent id resolves in-trace.
        let ids: HashSet<&str> = spans.iter().map(|(id, _, _)| id.as_str()).collect();
        for (id, parent, hop) in spans {
            if let Some(parent) = parent {
                assert!(
                    ids.contains(parent.as_str()),
                    "trace {trace}: span {id} ({hop}) orphaned on parent {parent}"
                );
            }
        }
    }
}
