//! The gateway is a transport, not a transform: the same job stream
//! must yield byte-identical results whether it arrives over TCP
//! through eight concurrent clients, in batch request lines, or
//! through the offline `drift serve` batch path.

use drift_gateway::loadgen::{self, LoadGenConfig};
use drift_gateway::protocol::{batch_request_line, batch_response_line, request_line};
use drift_gateway::server::{Gateway, GatewayConfig};
use drift_obs::Recorder;
use drift_serve::job::{result_line, synthetic_jobs, JobSpec};
use drift_serve::runtime::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

#[test]
fn gateway_results_match_offline_serve_byte_for_byte() {
    const JOBS: usize = 500;
    const SHAPES: usize = 4;
    const SEED: u64 = 42;

    let mut config = GatewayConfig::with_workers(8);
    // Deep enough that nothing sheds: every job must come back.
    config.queue_depth = JOBS;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let addr = gw.local_addr().to_string();

    let load = LoadGenConfig {
        clients: 8,
        jobs: JOBS,
        shapes: SHAPES,
        seed: SEED,
        ..LoadGenConfig::default()
    };
    let report = loadgen::run(&addr, &load).unwrap();
    report.verify_complete().unwrap();
    assert_eq!(report.ok, JOBS as u64, "{}", report.render());
    assert_eq!(report.shed, 0);
    assert_eq!(report.expired, 0);

    let summary = gw.shutdown();
    assert_eq!(summary.accepted, JOBS as u64);
    assert_eq!(summary.dropped, 0);

    let offline = serve(
        synthetic_jobs(JOBS, SHAPES, SEED),
        &ServeConfig::with_workers(8),
    );
    let mut offline_results = offline.results;
    offline_results.sort_by_key(|r| r.id);

    let online_lines: Vec<String> = report.results.iter().map(result_line).collect();
    let offline_lines: Vec<String> = offline_results.iter().map(result_line).collect();
    assert_eq!(online_lines, offline_lines);
}

#[test]
fn batched_loadgen_matches_offline_serve_byte_for_byte() {
    // The full batch path — batch framing, grouped admission, shared
    // schedule execution, response splicing, batched loadgen
    // accounting — must change nothing about the bytes.
    const JOBS: usize = 256;
    const SHAPES: usize = 4;
    const SEED: u64 = 42;

    let mut config = GatewayConfig::with_workers(8);
    config.queue_depth = JOBS;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let addr = gw.local_addr().to_string();

    let load = LoadGenConfig {
        clients: 4,
        jobs: JOBS,
        shapes: SHAPES,
        seed: SEED,
        batch: 32,
        ..LoadGenConfig::default()
    };
    let report = loadgen::run(&addr, &load).unwrap();
    report.verify_complete().unwrap();
    assert_eq!(report.ok, JOBS as u64, "{}", report.render());
    let summary = gw.shutdown();
    assert_eq!(summary.accepted, JOBS as u64);

    let offline = serve(
        synthetic_jobs(JOBS, SHAPES, SEED),
        &ServeConfig::with_workers(8),
    );
    let mut offline_results = offline.results;
    offline_results.sort_by_key(|r| r.id);

    let online_lines: Vec<String> = report.results.iter().map(result_line).collect();
    let offline_lines: Vec<String> = offline_results.iter().map(result_line).collect();
    assert_eq!(online_lines, offline_lines);
}

/// Submits `jobs` one per request line over raw TCP and returns the
/// exact response line for each, in submission order.
fn drive_raw_singleton(addr: &str, jobs: &[JobSpec]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to gateway");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut write = stream;
    jobs.iter()
        .map(|spec| {
            write
                .write_all(format!("{}\n", request_line(spec, None)).as_bytes())
                .expect("send request");
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            response.trim_end().to_string()
        })
        .collect()
}

#[test]
fn batch_response_lines_splice_the_exact_singleton_bytes() {
    // Wire-level identity: for the same job stream, a batch response
    // line must be byte-equal to the singleton response lines spliced
    // into the batch envelope — the gateway renders items with the
    // same serializers either way and splices, never re-encodes.
    const JOBS: usize = 48;
    const BATCH: usize = 12;
    let jobs = synthetic_jobs(JOBS, 4, 7);

    let singleton_gw = Gateway::start(
        "127.0.0.1:0",
        GatewayConfig::with_workers(2),
        Recorder::disabled(),
    )
    .unwrap();
    let singleton_lines = drive_raw_singleton(&singleton_gw.local_addr().to_string(), &jobs);
    singleton_gw.shutdown();

    let mut config = GatewayConfig::with_workers(2);
    config.queue_depth = JOBS;
    let batch_gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let stream = TcpStream::connect(batch_gw.local_addr()).expect("connect to gateway");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut write = stream;
    for (chunk, expected_items) in jobs.chunks(BATCH).zip(singleton_lines.chunks(BATCH)) {
        let batch_id = chunk[0].id;
        write
            .write_all(format!("{}\n", batch_request_line(batch_id, chunk, None)).as_bytes())
            .expect("send batch");
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .expect("read batch response");
        assert_eq!(
            response.trim_end(),
            batch_response_line(batch_id, expected_items),
            "batch {batch_id}: response must splice the exact singleton bytes"
        );
    }
    batch_gw.shutdown();
}
