//! The gateway is a transport, not a transform: the same job stream
//! must yield byte-identical results whether it arrives over TCP
//! through eight concurrent clients or through the offline
//! `drift serve` batch path.

use drift_gateway::loadgen::{self, LoadGenConfig};
use drift_gateway::server::{Gateway, GatewayConfig};
use drift_obs::Recorder;
use drift_serve::job::{result_line, synthetic_jobs};
use drift_serve::runtime::{serve, ServeConfig};

#[test]
fn gateway_results_match_offline_serve_byte_for_byte() {
    const JOBS: usize = 500;
    const SHAPES: usize = 4;
    const SEED: u64 = 42;

    let mut config = GatewayConfig::with_workers(8);
    // Deep enough that nothing sheds: every job must come back.
    config.queue_depth = JOBS;
    let gw = Gateway::start("127.0.0.1:0", config, Recorder::disabled()).unwrap();
    let addr = gw.local_addr().to_string();

    let load = LoadGenConfig {
        clients: 8,
        jobs: JOBS,
        shapes: SHAPES,
        seed: SEED,
        ..LoadGenConfig::default()
    };
    let report = loadgen::run(&addr, &load).unwrap();
    report.verify_complete().unwrap();
    assert_eq!(report.ok, JOBS as u64, "{}", report.render());
    assert_eq!(report.shed, 0);
    assert_eq!(report.expired, 0);

    let summary = gw.shutdown();
    assert_eq!(summary.accepted, JOBS as u64);
    assert_eq!(summary.dropped, 0);

    let offline = serve(
        synthetic_jobs(JOBS, SHAPES, SEED),
        &ServeConfig::with_workers(8),
    );
    let mut offline_results = offline.results;
    offline_results.sort_by_key(|r| r.id);

    let online_lines: Vec<String> = report.results.iter().map(result_line).collect();
    let offline_lines: Vec<String> = offline_results.iter().map(result_line).collect();
    assert_eq!(online_lines, offline_lines);
}
