//! Gateway-tier persistence integration: warm-start byte-identity over
//! TCP, and cache prewarming through the `prewarm` control message.
//!
//! The serve-tier equivalents live in `drift-serve`'s `persist` module
//! tests; these exercise the same contract end-to-end through the
//! gateway's socket protocol (`docs/PERSISTENCE.md`).

use drift_core::accelerator::DriftAccelerator;
use drift_gateway::client::Client;
use drift_gateway::protocol::request_line;
use drift_gateway::server::{Gateway, GatewayConfig};
use drift_obs::{Recorder, Tracer};
use drift_serve::job::{JobKind, JobSpec};
use drift_serve::worker::schedule_key_for;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "drift-gateway-persist-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

/// A schedule job over one of 8 distinct shapes, so repeated ids
/// exercise both the miss path and the hit path.
fn spec(id: u64) -> JobSpec {
    JobSpec {
        id,
        seed: id + 1,
        kind: JobKind::Schedule {
            m: 64 + (id as usize % 8) * 16,
            k: 128,
            n: 64,
            fa: 0.25,
            fw: 0.5,
        },
    }
}

/// Submits `specs` strictly one-at-a-time over a raw socket and returns
/// the exact response lines. Sequential submission pins the response
/// order, so two runs over the same stream are comparable byte-for-byte.
fn submit_raw(addr: &str, specs: &[JobSpec]) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::with_capacity(specs.len());
    for spec in specs {
        writer
            .write_all((request_line(spec, None) + "\n").as_bytes())
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "gateway hung up");
        lines.push(line);
    }
    lines
}

#[test]
fn warm_started_gateway_answers_byte_identically_without_solving() {
    let path = temp_path("warm");
    let config = GatewayConfig::with_workers(2);
    let specs: Vec<JobSpec> = (0..24).map(spec).collect();

    let cold_gw = Gateway::start_persistent(
        "127.0.0.1:0",
        config,
        Recorder::disabled(),
        Tracer::disabled(),
        &path,
    )
    .unwrap();
    let cold = submit_raw(&cold_gw.local_addr().to_string(), &specs);
    cold_gw.shutdown();

    // Restart on the same store: every schedule the cold run solved
    // loads before the acceptor starts, so the warm run never misses
    // and every response byte matches the cold run's.
    let recorder = Recorder::enabled();
    let warm_gw = Gateway::start_persistent(
        "127.0.0.1:0",
        config,
        recorder.clone(),
        Tracer::disabled(),
        &path,
    )
    .unwrap();
    let warm = submit_raw(&warm_gw.local_addr().to_string(), &specs);
    warm_gw.shutdown();

    assert_eq!(cold, warm, "warm responses must be byte-identical");
    let snap = recorder.registry().unwrap().snapshot();
    assert_eq!(
        snap.counter_sum("drift_schedule_cache_misses_total"),
        0,
        "a warm-started gateway should serve this stream without solving"
    );
    assert_eq!(snap.counter_sum("drift_store_records_loaded_total"), 8);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn prewarm_control_preloads_the_cache_ahead_of_traffic() {
    let recorder = Recorder::enabled();
    let gw = Gateway::start_traced(
        "127.0.0.1:0",
        GatewayConfig::with_workers(1),
        recorder.clone(),
        Tracer::disabled(),
    )
    .unwrap();

    // Solve the schedules locally — exactly what the router does for
    // keys that move to a new shard during a reshard.
    let fabric = DriftAccelerator::paper_config().unwrap().fabric();
    let specs: Vec<JobSpec> = (0..4).map(spec).collect();
    let entries: Vec<_> = specs
        .iter()
        .map(|s| {
            let key = schedule_key_for(s, fabric).expect("schedule jobs have keys");
            (key, key.solve().unwrap())
        })
        .collect();

    let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();
    assert!(client.prewarm(&entries).unwrap());
    // An empty batch is legal and acks fine.
    assert!(client.prewarm(&[]).unwrap());

    // The prewarmed gateway serves those shapes without a single solve.
    for s in &specs {
        match client.submit(s, None).unwrap() {
            drift_gateway::protocol::Response::Result(r) => assert_eq!(r.id, s.id),
            other => panic!("unexpected response {other:?}"),
        }
    }
    gw.shutdown();

    let snap = recorder.registry().unwrap().snapshot();
    assert_eq!(snap.counter_sum("drift_gateway_prewarm_entries_total"), 4);
    assert_eq!(snap.counter_sum("drift_schedule_cache_misses_total"), 0);
    assert_eq!(snap.counter_sum("drift_schedule_cache_hits_total"), 4);
}
