//! A networked serving front-end for the Drift runtime.
//!
//! `drift-serve` runs batches offline: read a JSONL file, execute,
//! print results. This crate puts a TCP server in front of the same
//! machinery so clients submit jobs over the network and stream
//! results back, without changing a single byte of any result. One
//! [`server::Gateway`] owns:
//!
//! * a **wire protocol** ([`protocol`]) — newline-delimited JSON, one
//!   request per line in, one response per line out, pipelined per
//!   connection. A request line is the `drift serve` [`JobSpec`] JSONL
//!   format, optionally extended with a `deadline_ms` budget;
//! * **admission control** — requests feed the bounded
//!   [`drift_serve::queue`] via its non-blocking `try_submit`; when the
//!   queue is full the gateway sheds the request with a structured
//!   `{"id":N,"error":"overloaded"}` response instead of stalling the
//!   connection, and clients retry with capped exponential backoff
//!   ([`client::RetryPolicy`]);
//! * **deadlines** — each request carries an optional budget, enforced
//!   both when a worker dequeues the job and again before the response
//!   is sent (`{"id":N,"error":"deadline_exceeded"}`);
//! * **graceful drain** — shutdown stops the acceptor, lets every
//!   admitted job finish and flush, then joins the pool; accepted work
//!   is never dropped;
//! * a **client library** ([`client`]) and a **closed-loop load
//!   generator** ([`loadgen`]) exposed as `drift loadgen`, reporting
//!   throughput and p50/p99 end-to-end latency.
//!
//! Every stage records into a [`drift_obs::Recorder`] — accepted,
//! shed and expired request counters, open-connection and in-flight
//! gauges, end-to-end latency histograms — on the same `/metrics`
//! endpoint the rest of the stack uses. `docs/SERVING.md` specifies the
//! wire contract; `docs/OBSERVABILITY.md` documents the metrics.
//!
//! # Example
//!
//! ```rust
//! use drift_gateway::client::Client;
//! use drift_gateway::protocol::Response;
//! use drift_gateway::server::{Gateway, GatewayConfig};
//! use drift_serve::job::{JobKind, JobSpec};
//!
//! let gw = Gateway::start(
//!     "127.0.0.1:0",
//!     GatewayConfig::with_workers(2),
//!     drift_obs::Recorder::disabled(),
//! )
//! .unwrap();
//! let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();
//! let spec = JobSpec {
//!     id: 0,
//!     seed: 7,
//!     kind: JobKind::Schedule { m: 128, k: 256, n: 128, fa: 0.25, fw: 0.5 },
//! };
//! match client.submit(&spec, None).unwrap() {
//!     Response::Result(result) => assert_eq!(result.id, 0),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! let summary = gw.shutdown();
//! assert_eq!(summary.accepted, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod framing;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, RetryPolicy, Submission};
pub use loadgen::{LoadGenConfig, LoadReport};
pub use protocol::{ControlOp, Request, Response};
pub use server::{Gateway, GatewayConfig, GatewaySummary};

// Re-exported so doc examples and downstream tests can name job types
// without a separate drift-serve dependency line.
pub use drift_serve::job::JobSpec;
