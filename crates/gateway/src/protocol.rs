//! The gateway wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line in, one response per line out. The request
//! format is a strict superset of the [`JobSpec`] JSONL format
//! `drift serve` reads — a plain job line is a valid request — plus an
//! optional `deadline_ms` budget and a `control` escape hatch:
//!
//! ```text
//! {"id":0,"seed":7,"kind":{"Schedule":{"m":512,"k":768,"n":768,"fa":0.2,"fw":0.1}}}
//! {"id":1,"seed":9,"kind":{"Simulate":{...}},"deadline_ms":250}
//! {"id":2,"batch":[{"id":10,...},{"id":11,...}],"deadline_ms":500}
//! {"control":"ping"}
//! {"control":"shutdown"}
//! ```
//!
//! A **batch** line submits several jobs as one atomically-admitted
//! unit (all-or-shed, one shared deadline) and is answered by exactly
//! one `{"id":2,"batch":[item,...]}` response whose items are, byte
//! for byte, the singleton responses the same jobs would have
//! received, in submission order.
//!
//! Success responses are [`JobResult`] lines, byte-identical to the
//! offline `drift serve` output for the same job. Failure responses are
//! flat error objects (`{"id":N,"error":"overloaded"}`); control lines
//! are acknowledged as `{"control":"ping","ok":true}`. Responses to
//! pipelined requests may arrive out of order — clients correlate by
//! `id`. The full contract lives in `docs/SERVING.md`.
//!
//! Requests may additionally carry distributed-tracing fields: a
//! `trace_id` of 32 hex digits plus an optional `trace_span` (the
//! sender's 16-hex span id, the parent of work done here) mark the
//! request as head-sampled; an **empty** `trace_id` (`"trace_id":""`)
//! records that an upstream edge decided *not* to sample, so receivers
//! must not re-decide; absent fields leave the decision to the
//! receiver. Untraced request lines are byte-identical to the
//! pre-tracing format. See `docs/OBSERVABILITY.md` § Tracing.

use drift_core::schedule::{Schedule, ScheduleKey};
use drift_obs::trace::{parse_span_id, span_id_hex};
use drift_obs::{TraceContext, TraceDecision, TraceId};
use drift_serve::job::{JobResult, JobSpec};
use serde::{Deserialize, Serialize, Value};

/// Error code: the queue was full and the request was shed.
pub const ERR_OVERLOADED: &str = "overloaded";
/// Error code: the request's deadline passed before its response.
pub const ERR_DEADLINE: &str = "deadline_exceeded";
/// Error code: the request line did not parse as a job or control line.
pub const ERR_BAD_REQUEST: &str = "bad_request";
/// Error code: the request was shed at admission because its deadline
/// budget was below the gateway's current service-time estimate — it
/// could not have met its deadline even with an empty queue.
pub const ERR_UNMEETABLE: &str = "deadline_unmeetable";

/// A control operation carried on a `{"control":...}` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Liveness probe; acknowledged immediately.
    Ping,
    /// Begin a graceful drain: stop accepting, flush in-flight work,
    /// then exit.
    Shutdown,
}

impl ControlOp {
    /// The wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            ControlOp::Ping => "ping",
            ControlOp::Shutdown => "shutdown",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A job submission, with an optional per-request deadline budget
    /// in milliseconds (measured from admission).
    Job {
        /// The job to run, in the `drift serve` JSONL format.
        spec: JobSpec,
        /// Overrides the server's default deadline when present.
        deadline_ms: Option<u64>,
        /// The upstream head-sampling decision carried on the wire
        /// (`trace_id`/`trace_span` fields; absent → `Undecided`).
        trace: TraceDecision,
    },
    /// A control line.
    Control(ControlOp),
    /// A `{"control":"prewarm","entries":[...]}` line carrying solved
    /// schedules for the cache — sent by the router for moved keys
    /// during a live reshard, or by tooling seeding a cold gateway (see
    /// `docs/PERSISTENCE.md`). Prewarmed entries are inserted without
    /// counting hits/misses and are never re-appended to a store.
    Prewarm(Vec<(ScheduleKey, Schedule)>),
    /// A `{"id":N,"batch":[spec,...]}` line submitting several jobs as
    /// one atomically-admitted unit: all-or-shed at the queue, one
    /// shared deadline budget, and exactly one response line carrying
    /// the per-item payloads in submission order (see `docs/SERVING.md`
    /// § Batch requests).
    Batch {
        /// The batch correlation id — the client's token for the whole
        /// line, echoed on the single response. Independent of the
        /// per-item job ids inside.
        id: u64,
        /// The jobs, each in the `drift serve` JSONL format. Never
        /// empty: an empty batch is a `bad_request`.
        specs: Vec<JobSpec>,
        /// One latency budget shared by every item, measured from the
        /// batch's admission.
        deadline_ms: Option<u64>,
        /// The upstream head-sampling decision for the whole batch.
        trace: TraceDecision,
    },
}

/// One parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job completed; the payload is the same [`JobResult`] the
    /// offline runtime would produce.
    Result(JobResult),
    /// The gateway refused or failed the request.
    Error {
        /// The request's id, when the gateway could recover it.
        id: Option<u64>,
        /// One of [`ERR_OVERLOADED`], [`ERR_DEADLINE`],
        /// [`ERR_UNMEETABLE`], [`ERR_BAD_REQUEST`].
        error: String,
    },
    /// A control acknowledgement.
    Control {
        /// The acknowledged operation name.
        op: String,
        /// Whether the gateway accepted the operation.
        ok: bool,
        /// The server's queue discipline (`"fifo"` / `"edf"`), carried
        /// on gateway ping acks so the router's health probes learn
        /// each shard's policy. Absent on other acks and on routers'
        /// own ping acks.
        queue: Option<String>,
    },
    /// The single response to a batch request: the echoed batch id and
    /// one item per submitted job, in submission order. Each item is a
    /// [`Response::Result`] or [`Response::Error`], byte-identical in
    /// payload to the line the same job would get submitted singly.
    Batch {
        /// The batch id from the request.
        id: u64,
        /// Per-item responses in submission order.
        items: Vec<Response>,
    },
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown control
/// operations, bad `deadline_ms` values, or job specs that do not
/// match the [`JobSpec`] schema.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    if let Some(op) = value.get("control") {
        let op = match op {
            Value::Str(s) => s.as_str(),
            other => return Err(format!("control must be a string, got {}", other.kind())),
        };
        return match op {
            "ping" => Ok(Request::Control(ControlOp::Ping)),
            "shutdown" => Ok(Request::Control(ControlOp::Shutdown)),
            "prewarm" => parse_prewarm_entries(&value).map(Request::Prewarm),
            other => Err(format!("unknown control operation '{other}'")),
        };
    }
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(u64::from_value(v).map_err(|e| format!("deadline_ms: {e}"))?),
    };
    let trace = parse_trace_fields(&value)?;
    if let Some(batch) = value.get("batch") {
        let items = match batch {
            Value::Seq(items) => items,
            other => return Err(format!("batch must be an array, got {}", other.kind())),
        };
        if items.is_empty() {
            return Err("batch must contain at least one job".to_string());
        }
        let id = match value.get("id") {
            Some(v) => u64::from_value(v).map_err(|e| format!("batch id: {e}"))?,
            None => return Err("batch requires an id".to_string()),
        };
        let specs = items
            .iter()
            .enumerate()
            .map(|(i, item)| JobSpec::from_value(item).map_err(|e| format!("batch item {i}: {e}")))
            .collect::<Result<Vec<JobSpec>, String>>()?;
        return Ok(Request::Batch {
            id,
            specs,
            deadline_ms,
            trace,
        });
    }
    let spec = JobSpec::from_value(&value).map_err(|e| e.to_string())?;
    Ok(Request::Job {
        spec,
        deadline_ms,
        trace,
    })
}

/// Decodes the `entries` array of a prewarm control line: each element
/// is `{"key":<ScheduleKey>,"schedule":<Schedule>}`.
fn parse_prewarm_entries(value: &Value) -> Result<Vec<(ScheduleKey, Schedule)>, String> {
    let entries = match value.get("entries") {
        Some(Value::Seq(seq)) => seq,
        Some(other) => return Err(format!("entries must be an array, got {}", other.kind())),
        None => return Err("prewarm requires an entries array".to_string()),
    };
    entries
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let key = item
                .get("key")
                .ok_or_else(|| format!("entry {i}: missing key"))?;
            let schedule = item
                .get("schedule")
                .ok_or_else(|| format!("entry {i}: missing schedule"))?;
            Ok((
                ScheduleKey::from_value(key).map_err(|e| format!("entry {i} key: {e}"))?,
                Schedule::from_value(schedule).map_err(|e| format!("entry {i} schedule: {e}"))?,
            ))
        })
        .collect()
}

/// Decodes the optional `trace_id`/`trace_span` request fields into a
/// [`TraceDecision`].
fn parse_trace_fields(value: &Value) -> Result<TraceDecision, String> {
    let id = match value.get("trace_id") {
        None | Some(Value::Null) => return Ok(TraceDecision::Undecided),
        Some(Value::Str(s)) => s.as_str(),
        Some(other) => return Err(format!("trace_id must be a string, got {}", other.kind())),
    };
    if id.is_empty() {
        return Ok(TraceDecision::Unsampled);
    }
    let trace_id =
        TraceId::parse(id).ok_or_else(|| format!("trace_id must be 32 hex digits, got '{id}'"))?;
    let parent_span = match value.get("trace_span") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => Some(
            parse_span_id(s)
                .ok_or_else(|| format!("trace_span must be 16 hex digits, got '{s}'"))?,
        ),
        Some(other) => return Err(format!("trace_span must be a string, got {}", other.kind())),
    };
    Ok(TraceDecision::Sampled(TraceContext {
        trace_id,
        parent_span,
    }))
}

/// Renders a job request line (no trailing newline). Without a
/// deadline the line is byte-identical to the `drift serve` JobSpec
/// JSONL format.
pub fn request_line(spec: &JobSpec, deadline_ms: Option<u64>) -> String {
    request_line_traced(spec, deadline_ms, &TraceDecision::Undecided)
}

/// Renders a job request line carrying a sampling decision. An
/// `Undecided` decision adds no fields (the line is identical to
/// [`request_line`]); `Unsampled` adds `"trace_id":""`; `Sampled` adds
/// the hex `trace_id` and, when the context has a parent, the sender's
/// `trace_span`.
pub fn request_line_traced(
    spec: &JobSpec,
    deadline_ms: Option<u64>,
    trace: &TraceDecision,
) -> String {
    let mut value = spec.to_value();
    if let Value::Map(entries) = &mut value {
        if let Some(ms) = deadline_ms {
            entries.push(("deadline_ms".to_string(), ms.to_value()));
        }
        match trace {
            TraceDecision::Undecided => {}
            TraceDecision::Unsampled => {
                entries.push(("trace_id".to_string(), Value::Str(String::new())));
            }
            TraceDecision::Sampled(ctx) => {
                entries.push(("trace_id".to_string(), Value::Str(ctx.trace_id.to_string())));
                if let Some(parent) = ctx.parent_span {
                    entries.push(("trace_span".to_string(), Value::Str(span_id_hex(parent))));
                }
            }
        }
    }
    render(&value)
}

/// Renders a batch request line, e.g.
/// `{"id":3,"batch":[{...},{...}],"deadline_ms":250}` (no trailing
/// newline). The elements of `batch` are exactly the singleton request
/// payloads for the same specs.
pub fn batch_request_line(id: u64, specs: &[JobSpec], deadline_ms: Option<u64>) -> String {
    batch_request_line_traced(id, specs, deadline_ms, &TraceDecision::Undecided)
}

/// [`batch_request_line`] carrying a sampling decision for the whole
/// batch, with the same field semantics as [`request_line_traced`].
pub fn batch_request_line_traced(
    id: u64,
    specs: &[JobSpec],
    deadline_ms: Option<u64>,
    trace: &TraceDecision,
) -> String {
    let mut entries = vec![
        ("id".to_string(), id.to_value()),
        (
            "batch".to_string(),
            Value::Seq(specs.iter().map(|s| s.to_value()).collect()),
        ),
    ];
    if let Some(ms) = deadline_ms {
        entries.push(("deadline_ms".to_string(), ms.to_value()));
    }
    match trace {
        TraceDecision::Undecided => {}
        TraceDecision::Unsampled => {
            entries.push(("trace_id".to_string(), Value::Str(String::new())));
        }
        TraceDecision::Sampled(ctx) => {
            entries.push(("trace_id".to_string(), Value::Str(ctx.trace_id.to_string())));
            if let Some(parent) = ctx.parent_span {
                entries.push(("trace_span".to_string(), Value::Str(span_id_hex(parent))));
            }
        }
    }
    render(&Value::Map(entries))
}

/// Assembles the one-line response to a batch request from the
/// already-rendered per-item response payloads, in submission order.
/// Splicing pre-rendered lines (rather than re-building a value tree)
/// keeps each item byte-identical to the singleton response for the
/// same job and avoids re-serialising results on the hot path.
pub fn batch_response_line(id: u64, items: &[String]) -> String {
    let mut line = String::with_capacity(24 + items.iter().map(|i| i.len() + 1).sum::<usize>());
    line.push_str("{\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"batch\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(item);
    }
    line.push_str("]}");
    line
}

/// Renders a protocol value tree; the protocol's values never contain
/// non-finite floats, so serialization cannot fail.
fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("protocol lines contain only finite numbers")
}

/// Renders a control request line.
pub fn control_line(op: ControlOp) -> String {
    render(&Value::Map(vec![(
        "control".to_string(),
        Value::Str(op.name().to_string()),
    )]))
}

/// Renders a prewarm control line carrying solved schedules.
pub fn prewarm_line(entries: &[(ScheduleKey, Schedule)]) -> String {
    let items: Vec<Value> = entries
        .iter()
        .map(|(key, schedule)| {
            Value::Map(vec![
                ("key".to_string(), key.to_value()),
                ("schedule".to_string(), schedule.to_value()),
            ])
        })
        .collect();
    render(&Value::Map(vec![
        ("control".to_string(), Value::Str("prewarm".to_string())),
        ("entries".to_string(), Value::Seq(items)),
    ]))
}

/// Renders a prewarm acknowledgement,
/// e.g. `{"control":"prewarm","ok":true,"inserted":12}`. The `inserted`
/// count is informational (generic control parsing ignores it).
pub fn prewarm_ack_line(ok: bool, inserted: u64) -> String {
    render(&Value::Map(vec![
        ("control".to_string(), Value::Str("prewarm".to_string())),
        ("ok".to_string(), Value::Bool(ok)),
        ("inserted".to_string(), inserted.to_value()),
    ]))
}

/// Renders an error response line, e.g. `{"id":3,"error":"overloaded"}`.
pub fn error_line(id: Option<u64>, error: &str) -> String {
    let mut entries = Vec::with_capacity(2);
    if let Some(id) = id {
        entries.push(("id".to_string(), id.to_value()));
    }
    entries.push(("error".to_string(), Value::Str(error.to_string())));
    render(&Value::Map(entries))
}

/// Renders a control acknowledgement line.
pub fn control_ack_line(op: ControlOp, ok: bool) -> String {
    render(&Value::Map(vec![
        ("control".to_string(), Value::Str(op.name().to_string())),
        ("ok".to_string(), Value::Bool(ok)),
    ]))
}

/// Renders a gateway ping acknowledgement advertising the server's
/// queue discipline, e.g. `{"control":"ping","ok":true,"queue":"edf"}`.
pub fn ping_ack_line(ok: bool, queue: &str) -> String {
    render(&Value::Map(vec![
        (
            "control".to_string(),
            Value::Str(ControlOp::Ping.name().to_string()),
        ),
        ("ok".to_string(), Value::Bool(ok)),
        ("queue".to_string(), Value::Str(queue.to_string())),
    ]))
}

/// Parses one response line into a [`Response`].
///
/// # Errors
///
/// Returns a message when the line is not valid JSON or matches none of
/// the three response shapes.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    if let Some(op) = value.get("control") {
        let op = match op {
            Value::Str(s) => s.clone(),
            other => return Err(format!("control must be a string, got {}", other.kind())),
        };
        let ok = matches!(value.get("ok"), Some(Value::Bool(true)));
        let queue = match value.get("queue") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        return Ok(Response::Control { op, ok, queue });
    }
    if let Some(batch) = value.get("batch") {
        let items = match batch {
            Value::Seq(items) => items,
            other => return Err(format!("batch must be an array, got {}", other.kind())),
        };
        let id = match value.get("id") {
            Some(v) => u64::from_value(v).map_err(|e| format!("batch id: {e}"))?,
            None => return Err("batch response requires an id".to_string()),
        };
        let items = items
            .iter()
            .enumerate()
            .map(|(i, item)| parse_response_item(item).map_err(|e| format!("batch item {i}: {e}")))
            .collect::<Result<Vec<Response>, String>>()?;
        return Ok(Response::Batch { id, items });
    }
    parse_response_item(&value)
}

/// Parses a result-or-error response payload — the shape shared by a
/// singleton response line and each element of a batch response.
fn parse_response_item(value: &Value) -> Result<Response, String> {
    if let Some(err) = value.get("error") {
        let error = match err {
            Value::Str(s) => s.clone(),
            other => return Err(format!("error must be a string, got {}", other.kind())),
        };
        let id = match value.get("id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(u64::from_value(v).map_err(|e| format!("id: {e}"))?),
        };
        return Ok(Response::Error { id, error });
    }
    JobResult::from_value(value)
        .map(Response::Result)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_serve::job::{result_line, JobKind, JobOutcome};

    fn spec() -> JobSpec {
        JobSpec {
            id: 7,
            seed: 3,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.25,
                fw: 0.5,
            },
        }
    }

    #[test]
    fn job_requests_round_trip_with_and_without_deadline() {
        let plain = request_line(&spec(), None);
        // Without a deadline the request is exactly the serve format.
        assert_eq!(plain, serde_json::to_string(&spec()).unwrap());
        assert_eq!(
            parse_request(&plain).unwrap(),
            Request::Job {
                spec: spec(),
                deadline_ms: None,
                trace: TraceDecision::Undecided
            }
        );
        let budgeted = request_line(&spec(), Some(250));
        assert!(budgeted.contains("\"deadline_ms\":250"));
        assert_eq!(
            parse_request(&budgeted).unwrap(),
            Request::Job {
                spec: spec(),
                deadline_ms: Some(250),
                trace: TraceDecision::Undecided
            }
        );
    }

    #[test]
    fn trace_fields_round_trip() {
        // Undecided adds nothing: byte-identical to the plain line.
        assert_eq!(
            request_line_traced(&spec(), None, &TraceDecision::Undecided),
            request_line(&spec(), None)
        );
        // Decided-unsampled is the empty trace id.
        let unsampled = request_line_traced(&spec(), Some(100), &TraceDecision::Unsampled);
        assert!(unsampled.contains("\"trace_id\":\"\""));
        assert!(matches!(
            parse_request(&unsampled).unwrap(),
            Request::Job {
                trace: TraceDecision::Unsampled,
                ..
            }
        ));
        // Sampled carries the trace id and the sender's span id.
        let ctx = TraceContext {
            trace_id: TraceId(0xabcd_0123),
            parent_span: Some(0xfeed),
        };
        let sampled = request_line_traced(&spec(), None, &TraceDecision::Sampled(ctx));
        assert!(sampled.contains(&format!("\"trace_id\":\"{}\"", ctx.trace_id)));
        assert!(sampled.contains(&format!("\"trace_span\":\"{}\"", span_id_hex(0xfeed))));
        match parse_request(&sampled).unwrap() {
            Request::Job { trace, .. } => assert_eq!(trace, TraceDecision::Sampled(ctx)),
            other => panic!("expected a job, got {other:?}"),
        }
        // A sampled root (no parent yet) omits trace_span.
        let root = request_line_traced(
            &spec(),
            None,
            &TraceDecision::Sampled(TraceContext {
                trace_id: TraceId(5),
                parent_span: None,
            }),
        );
        assert!(!root.contains("trace_span"));
        // Malformed hex is rejected with a pointed message.
        let err = parse_request("{\"id\":1,\"seed\":2,\"kind\":{\"Select\":{\"tokens\":4,\"hidden\":8,\"delta\":0.1,\"profile\":\"bert\"}},\"trace_id\":\"zz\"}")
            .unwrap_err();
        assert!(err.contains("trace_id"), "{err}");
    }

    #[test]
    fn control_lines_round_trip() {
        for op in [ControlOp::Ping, ControlOp::Shutdown] {
            let req = parse_request(&control_line(op)).unwrap();
            assert_eq!(req, Request::Control(op));
            let ack = parse_response(&control_ack_line(op, true)).unwrap();
            assert_eq!(
                ack,
                Response::Control {
                    op: op.name().to_string(),
                    ok: true,
                    queue: None
                }
            );
        }
        assert!(parse_request("{\"control\":\"reboot\"}").is_err());
    }

    #[test]
    fn ping_acks_advertise_the_queue_policy() {
        let line = ping_ack_line(true, "edf");
        assert_eq!(line, "{\"control\":\"ping\",\"ok\":true,\"queue\":\"edf\"}");
        assert_eq!(
            parse_response(&line).unwrap(),
            Response::Control {
                op: "ping".to_string(),
                ok: true,
                queue: Some("edf".to_string())
            }
        );
        // Plain acks (and pre-queue servers) parse with no policy.
        assert_eq!(
            parse_response(&control_ack_line(ControlOp::Ping, true)).unwrap(),
            Response::Control {
                op: "ping".to_string(),
                ok: true,
                queue: None
            }
        );
    }

    #[test]
    fn prewarm_lines_round_trip() {
        use drift_quant::Precision;
        let key = ScheduleKey {
            shape: drift_accel::gemm::GemmShape::new(64, 256, 64).unwrap(),
            act_high: 16,
            weight_high: 8,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
            fabric: drift_accel::systolic::ArrayGeometry::new(8, 9).unwrap(),
        };
        let entries = vec![(key, key.solve().unwrap())];
        let line = prewarm_line(&entries);
        assert!(line.starts_with("{\"control\":\"prewarm\""));
        match parse_request(&line).unwrap() {
            Request::Prewarm(parsed) => assert_eq!(parsed, entries),
            other => panic!("expected a prewarm, got {other:?}"),
        }
        // An empty batch is legal (a reshard may move zero tracked keys).
        assert_eq!(
            parse_request(&prewarm_line(&[])).unwrap(),
            Request::Prewarm(Vec::new())
        );
        // Malformed batches are rejected with pointed messages.
        assert!(parse_request("{\"control\":\"prewarm\"}").is_err());
        assert!(parse_request("{\"control\":\"prewarm\",\"entries\":7}").is_err());
        assert!(parse_request("{\"control\":\"prewarm\",\"entries\":[{\"key\":1}]}").is_err());
        // The ack parses as a generic control acknowledgement.
        let ack = parse_response(&prewarm_ack_line(true, 12)).unwrap();
        assert_eq!(
            ack,
            Response::Control {
                op: "prewarm".to_string(),
                ok: true,
                queue: None
            }
        );
    }

    #[test]
    fn error_lines_round_trip() {
        let line = error_line(Some(9), ERR_OVERLOADED);
        assert_eq!(line, "{\"id\":9,\"error\":\"overloaded\"}");
        assert_eq!(
            parse_response(&line).unwrap(),
            Response::Error {
                id: Some(9),
                error: ERR_OVERLOADED.to_string()
            }
        );
        let anon = error_line(None, ERR_BAD_REQUEST);
        assert_eq!(
            parse_response(&anon).unwrap(),
            Response::Error {
                id: None,
                error: ERR_BAD_REQUEST.to_string()
            }
        );
    }

    #[test]
    fn result_responses_parse_as_results() {
        let result = JobResult {
            id: 4,
            outcome: JobOutcome::Schedule {
                makespan: 100,
                latencies: [1, 2, 3, 4],
            },
        };
        assert_eq!(
            parse_response(&result_line(&result)).unwrap(),
            Response::Result(result)
        );
        // A job-level error outcome is still a Result, not a gateway
        // error: the job ran, its payload says it failed.
        let failed = JobResult {
            id: 5,
            outcome: JobOutcome::Error {
                message: "bad shape".to_string(),
            },
        };
        assert!(matches!(
            parse_response(&result_line(&failed)).unwrap(),
            Response::Result(_)
        ));
    }

    #[test]
    fn batch_requests_round_trip() {
        let specs = vec![
            spec(),
            JobSpec {
                id: 8,
                seed: 4,
                kind: JobKind::Select {
                    tokens: 16,
                    hidden: 32,
                    delta: 0.1,
                    profile: "bert".to_string(),
                },
            },
        ];
        let line = batch_request_line(3, &specs, Some(250));
        // The elements are exactly the singleton request payloads.
        for s in &specs {
            assert!(line.contains(&request_line(s, None)), "{line}");
        }
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Batch {
                id: 3,
                specs: specs.clone(),
                deadline_ms: Some(250),
                trace: TraceDecision::Undecided
            }
        );
        // Traced batches carry the decision for the whole line.
        let unsampled = batch_request_line_traced(3, &specs, None, &TraceDecision::Unsampled);
        assert!(matches!(
            parse_request(&unsampled).unwrap(),
            Request::Batch {
                trace: TraceDecision::Unsampled,
                ..
            }
        ));
        // Empty batches, missing ids, and bad elements are rejected.
        assert!(parse_request("{\"id\":1,\"batch\":[]}").is_err());
        assert!(parse_request("{\"batch\":[{\"id\":1}]}").is_err());
        assert!(parse_request("{\"id\":1,\"batch\":7}").is_err());
        let err = parse_request("{\"id\":1,\"batch\":[{\"id\":2}]}").unwrap_err();
        assert!(err.contains("batch item 0"), "{err}");
    }

    #[test]
    fn batch_responses_splice_singleton_payloads() {
        let ok = result_line(&JobResult {
            id: 10,
            outcome: JobOutcome::Schedule {
                makespan: 42,
                latencies: [4, 3, 2, 1],
            },
        });
        let err = error_line(Some(11), ERR_DEADLINE);
        let line = batch_response_line(3, &[ok.clone(), err.clone()]);
        assert_eq!(line, format!("{{\"id\":3,\"batch\":[{ok},{err}]}}"));
        match parse_response(&line).unwrap() {
            Response::Batch { id, items } => {
                assert_eq!(id, 3);
                assert_eq!(items.len(), 2);
                assert!(matches!(&items[0], Response::Result(r) if r.id == 10));
                assert!(matches!(
                    &items[1],
                    Response::Error { id: Some(11), error } if error == ERR_DEADLINE
                ));
            }
            other => panic!("expected a batch, got {other:?}"),
        }
        // An empty batch response parses (a shed batch answers with a
        // flat error line instead, but the shape itself is legal).
        assert!(matches!(
            parse_response("{\"id\":9,\"batch\":[]}").unwrap(),
            Response::Batch { id: 9, items } if items.is_empty()
        ));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"id\":1}").is_err());
        assert!(parse_request("{\"id\":1,\"seed\":2,\"kind\":{\"Nope\":{}}}").is_err());
        let err =
            parse_request("{\"id\":1,\"seed\":2,\"kind\":{\"Select\":{\"tokens\":4,\"hidden\":8,\"delta\":0.1,\"profile\":\"bert\"}},\"deadline_ms\":\"soon\"}")
                .unwrap_err();
        assert!(err.contains("deadline_ms"), "{err}");
    }
}
