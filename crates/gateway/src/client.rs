//! A blocking gateway client: connect, submit, retry-on-shed.
//!
//! One [`Client`] wraps one TCP connection. [`Client::submit`] is the
//! simple request/response path; [`Client::send`] / [`Client::recv`]
//! split the two halves for pipelining (responses then arrive in any
//! order and must be correlated by `id`). [`Client::submit_with_retry`]
//! turns the gateway's `overloaded` shed responses into capped
//! exponential backoff, the cooperative half of the admission-control
//! contract (see `docs/SERVING.md`).

use crate::protocol::{self, ControlOp, Response, ERR_OVERLOADED};
use drift_core::schedule::{Schedule, ScheduleKey};
use drift_serve::job::JobSpec;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How a client waits between retries of a shed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = give up immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): `base *
    /// 2^attempt`, capped at [`RetryPolicy::cap`].
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// The outcome of a [`Client::submit_with_retry`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The final response (a result, or the last shed if retries ran
    /// out, or another gateway error).
    pub response: Response,
    /// Shed responses absorbed by backoff along the way.
    pub retries: u32,
}

/// One connection to a gateway.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7077`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects to `addr` with a bound on the connect time, so callers
    /// probing a possibly-dead peer (the router's health checks) are
    /// never stuck in a long kernel connect timeout.
    ///
    /// # Errors
    ///
    /// Propagates address-resolution and connect failures; an
    /// unresolvable `addr` is an `InvalidInput` error.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        use std::net::ToSocketAddrs;
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        Client::from_stream(TcpStream::connect_timeout(&sockaddr, timeout)?)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// A handle onto the underlying socket, so an owner pooling
    /// split-half connections can force a blocked reader out of `recv`
    /// (via [`TcpStream::shutdown`]) without waiting for the peer.
    ///
    /// # Errors
    ///
    /// Propagates the `try_clone` failure.
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.reader.get_ref().try_clone()
    }

    /// Sends one job request without waiting for the response
    /// (pipelining). Pair with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<(), String> {
        self.send_raw(&protocol::request_line(spec, deadline_ms))
    }

    /// Sends one raw line (exposed for protocol tests and tooling).
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("gateway send failed: {e}"))
    }

    /// Blocks for the next response line.
    ///
    /// # Errors
    ///
    /// Reports a closed connection or an unparseable response.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("gateway recv failed: {e}"))?;
        if n == 0 {
            return Err("gateway closed the connection".to_string());
        }
        protocol::parse_response(line.trim_end())
    }

    /// Sends one job and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures; gateway-level refusals come back
    /// as [`Response::Error`], not `Err`.
    pub fn submit(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<Response, String> {
        self.send(spec, deadline_ms)?;
        self.recv()
    }

    /// Sends one batch request (`{"id":N,"batch":[...]}`) without
    /// waiting for the response (pipelining). Pair with
    /// [`Client::recv`]; the single response line carries every item.
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send_batch(
        &mut self,
        id: u64,
        specs: &[JobSpec],
        deadline_ms: Option<u64>,
    ) -> Result<(), String> {
        self.send_raw(&protocol::batch_request_line(id, specs, deadline_ms))
    }

    /// Sends one batch of jobs and waits for its single response line:
    /// a [`Response::Batch`] with per-item payloads in submission
    /// order, or a flat [`Response::Error`] carrying the batch id when
    /// the gateway refused the whole batch (shed or unmeetable — batch
    /// admission is all-or-shed, see `docs/SERVING.md`).
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn submit_batch(
        &mut self,
        id: u64,
        specs: &[JobSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.send_batch(id, specs, deadline_ms)?;
        self.recv()
    }

    /// [`Client::submit_batch`], retrying whole-batch sheds with
    /// capped exponential backoff. Batch admission is all-or-shed, so
    /// a shed response means no item was admitted and resubmitting the
    /// whole batch is exactly-once safe.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn submit_batch_with_retry(
        &mut self,
        id: u64,
        specs: &[JobSpec],
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<Submission, String> {
        let mut retries = 0;
        loop {
            let response = self.submit_batch(id, specs, deadline_ms)?;
            let shed =
                matches!(&response, Response::Error { error, .. } if error == ERR_OVERLOADED);
            if !shed || retries >= policy.max_retries {
                return Ok(Submission { response, retries });
            }
            std::thread::sleep(policy.delay(retries));
            retries += 1;
        }
    }

    /// [`Client::submit`], retrying shed (`overloaded`) responses with
    /// capped exponential backoff. Other responses — results, deadline
    /// errors — return immediately.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<Submission, String> {
        let mut retries = 0;
        loop {
            let response = self.submit(spec, deadline_ms)?;
            let shed =
                matches!(&response, Response::Error { error, .. } if error == ERR_OVERLOADED);
            if !shed || retries >= policy.max_retries {
                return Ok(Submission { response, retries });
            }
            std::thread::sleep(policy.delay(retries));
            retries += 1;
        }
    }

    /// Probes the gateway with a `ping` control line.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-control response.
    pub fn ping(&mut self) -> Result<bool, String> {
        self.control(ControlOp::Ping).map(|(ok, _)| ok)
    }

    /// Probes the gateway with a `ping` and returns its advertised
    /// queue discipline alongside the ack (`None` when the peer
    /// predates, or — like the router — does not expose, a policy).
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-control response.
    pub fn ping_queue(&mut self) -> Result<(bool, Option<String>), String> {
        self.control(ControlOp::Ping)
    }

    /// Asks the gateway to drain and exit.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-control response.
    pub fn shutdown_server(&mut self) -> Result<bool, String> {
        self.control(ControlOp::Shutdown).map(|(ok, _)| ok)
    }

    /// Pushes a batch of already-solved schedules into the gateway's
    /// cache (the router's reshard-prewarming path). Returns the
    /// gateway's ack.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-prewarm response.
    pub fn prewarm(&mut self, entries: &[(ScheduleKey, Schedule)]) -> Result<bool, String> {
        self.send_raw(&protocol::prewarm_line(entries))?;
        match self.recv()? {
            Response::Control { op, ok, .. } if op == "prewarm" => Ok(ok),
            other => Err(format!("expected a prewarm ack, got {other:?}")),
        }
    }

    fn control(&mut self, op: ControlOp) -> Result<(bool, Option<String>), String> {
        self.send_raw(&protocol::control_line(op))?;
        match self.recv()? {
            Response::Control {
                op: echoed,
                ok,
                queue,
            } if echoed == op.name() => Ok((ok, queue)),
            other => Err(format!("expected a {} ack, got {other:?}", op.name())),
        }
    }

    /// Splits the connection into independent send and receive halves
    /// so one thread can keep pipelining requests while another reaps
    /// responses (the open-loop load generator's mode of operation).
    pub fn split(self) -> (ClientReader, ClientWriter) {
        (
            ClientReader {
                reader: self.reader,
            },
            ClientWriter {
                writer: self.writer,
            },
        )
    }
}

/// The receive half of a split [`Client`].
#[derive(Debug)]
pub struct ClientReader {
    reader: BufReader<TcpStream>,
}

impl ClientReader {
    /// Blocks for the next response line (see [`Client::recv`]).
    ///
    /// # Errors
    ///
    /// Reports a closed connection or an unparseable response.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("gateway recv failed: {e}"))?;
        if n == 0 {
            return Err("gateway closed the connection".to_string());
        }
        protocol::parse_response(line.trim_end())
    }
}

/// The send half of a split [`Client`].
#[derive(Debug)]
pub struct ClientWriter {
    writer: TcpStream,
}

impl ClientWriter {
    /// Sends one job request without waiting for the response (see
    /// [`Client::send`]).
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<(), String> {
        self.send_raw(&protocol::request_line(spec, deadline_ms))
    }

    /// Sends one batch request without waiting for the response (see
    /// [`Client::send_batch`]).
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send_batch(
        &mut self,
        id: u64,
        specs: &[JobSpec],
        deadline_ms: Option<u64>,
    ) -> Result<(), String> {
        self.send_raw(&protocol::batch_request_line(id, specs, deadline_ms))
    }

    /// Sends one raw line (see [`Client::send_raw`]) — what a proxy
    /// tier forwarding rewritten request lines needs.
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("gateway send failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{error_line, ERR_DEADLINE};
    use drift_serve::job::{result_line, JobKind, JobOutcome, JobResult};
    use std::net::TcpListener;

    /// A stub gateway that sheds the first `sheds` job lines with
    /// `overloaded` and then answers each line via `answer`. Returns
    /// the address to connect to.
    fn stub_server(
        sheds: usize,
        answer: impl Fn(u64) -> String + Send + 'static,
    ) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let reader = BufReader::new(stream);
            for (seen, line) in reader.lines().enumerate() {
                let Ok(line) = line else { break };
                let spec: JobSpec = serde_json::from_str(&line).unwrap();
                let response = if seen < sheds {
                    error_line(Some(spec.id), ERR_OVERLOADED)
                } else {
                    answer(spec.id)
                };
                if writer.write_all((response + "\n").as_bytes()).is_err() {
                    break;
                }
            }
        });
        addr
    }

    fn spec() -> JobSpec {
        JobSpec {
            id: 7,
            seed: 1,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.25,
                fw: 0.5,
            },
        }
    }

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(100),
        }
    }

    #[test]
    fn submit_with_retry_absorbs_sheds_until_a_result() {
        let addr = stub_server(2, |id| {
            result_line(&JobResult {
                id,
                outcome: JobOutcome::Schedule {
                    makespan: 1,
                    latencies: [1, 1, 1, 1],
                },
            })
        });
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let sub = client
            .submit_with_retry(&spec(), None, &fast_policy(8))
            .unwrap();
        assert_eq!(sub.retries, 2);
        assert!(matches!(sub.response, Response::Result(r) if r.id == 7));
    }

    #[test]
    fn submit_with_retry_surfaces_the_last_shed_when_retries_run_out() {
        // A server that always sheds: the caller gets the shed back
        // after `max_retries` attempts and can fail over elsewhere —
        // the router's shed-then-failover path builds on exactly this.
        let addr = stub_server(usize::MAX, |_| unreachable!());
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let sub = client
            .submit_with_retry(&spec(), None, &fast_policy(3))
            .unwrap();
        assert_eq!(sub.retries, 3);
        assert!(
            matches!(&sub.response, Response::Error { id: Some(7), error } if error == ERR_OVERLOADED)
        );
    }

    #[test]
    fn submit_with_retry_returns_non_shed_errors_immediately() {
        let addr = stub_server(0, |id| error_line(Some(id), ERR_DEADLINE));
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let sub = client
            .submit_with_retry(&spec(), Some(5), &fast_policy(8))
            .unwrap();
        assert_eq!(sub.retries, 0);
        assert!(matches!(&sub.response, Response::Error { error, .. } if error == ERR_DEADLINE));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(2));
        assert_eq!(policy.delay(1), Duration::from_millis(4));
        assert_eq!(policy.delay(2), Duration::from_millis(8));
        assert_eq!(policy.delay(3), Duration::from_millis(16));
        assert_eq!(policy.delay(4), Duration::from_millis(20));
        assert_eq!(policy.delay(31), Duration::from_millis(20));
        // Shift overflow saturates instead of wrapping.
        assert_eq!(policy.delay(40), Duration::from_millis(20));
    }
}
