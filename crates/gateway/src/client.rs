//! A blocking gateway client: connect, submit, retry-on-shed.
//!
//! One [`Client`] wraps one TCP connection. [`Client::submit`] is the
//! simple request/response path; [`Client::send`] / [`Client::recv`]
//! split the two halves for pipelining (responses then arrive in any
//! order and must be correlated by `id`). [`Client::submit_with_retry`]
//! turns the gateway's `overloaded` shed responses into capped
//! exponential backoff, the cooperative half of the admission-control
//! contract (see `docs/SERVING.md`).

use crate::protocol::{self, ControlOp, Response, ERR_OVERLOADED};
use drift_serve::job::JobSpec;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How a client waits between retries of a shed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = give up immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): `base *
    /// 2^attempt`, capped at [`RetryPolicy::cap`].
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// The outcome of a [`Client::submit_with_retry`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The final response (a result, or the last shed if retries ran
    /// out, or another gateway error).
    pub response: Response,
    /// Shed responses absorbed by backoff along the way.
    pub retries: u32,
}

/// One connection to a gateway.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7077`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one job request without waiting for the response
    /// (pipelining). Pair with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<(), String> {
        self.send_raw(&protocol::request_line(spec, deadline_ms))
    }

    /// Sends one raw line (exposed for protocol tests and tooling).
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send_raw(&mut self, line: &str) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("gateway send failed: {e}"))
    }

    /// Blocks for the next response line.
    ///
    /// # Errors
    ///
    /// Reports a closed connection or an unparseable response.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("gateway recv failed: {e}"))?;
        if n == 0 {
            return Err("gateway closed the connection".to_string());
        }
        protocol::parse_response(line.trim_end())
    }

    /// Sends one job and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures; gateway-level refusals come back
    /// as [`Response::Error`], not `Err`.
    pub fn submit(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<Response, String> {
        self.send(spec, deadline_ms)?;
        self.recv()
    }

    /// [`Client::submit`], retrying shed (`overloaded`) responses with
    /// capped exponential backoff. Other responses — results, deadline
    /// errors — return immediately.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<Submission, String> {
        let mut retries = 0;
        loop {
            let response = self.submit(spec, deadline_ms)?;
            let shed =
                matches!(&response, Response::Error { error, .. } if error == ERR_OVERLOADED);
            if !shed || retries >= policy.max_retries {
                return Ok(Submission { response, retries });
            }
            std::thread::sleep(policy.delay(retries));
            retries += 1;
        }
    }

    /// Probes the gateway with a `ping` control line.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-control response.
    pub fn ping(&mut self) -> Result<bool, String> {
        self.control(ControlOp::Ping)
    }

    /// Asks the gateway to drain and exit.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures or a non-control response.
    pub fn shutdown_server(&mut self) -> Result<bool, String> {
        self.control(ControlOp::Shutdown)
    }

    fn control(&mut self, op: ControlOp) -> Result<bool, String> {
        self.send_raw(&protocol::control_line(op))?;
        match self.recv()? {
            Response::Control { op: echoed, ok } if echoed == op.name() => Ok(ok),
            other => Err(format!("expected a {} ack, got {other:?}", op.name())),
        }
    }

    /// Splits the connection into independent send and receive halves
    /// so one thread can keep pipelining requests while another reaps
    /// responses (the open-loop load generator's mode of operation).
    pub fn split(self) -> (ClientReader, ClientWriter) {
        (
            ClientReader {
                reader: self.reader,
            },
            ClientWriter {
                writer: self.writer,
            },
        )
    }
}

/// The receive half of a split [`Client`].
#[derive(Debug)]
pub struct ClientReader {
    reader: BufReader<TcpStream>,
}

impl ClientReader {
    /// Blocks for the next response line (see [`Client::recv`]).
    ///
    /// # Errors
    ///
    /// Reports a closed connection or an unparseable response.
    pub fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("gateway recv failed: {e}"))?;
        if n == 0 {
            return Err("gateway closed the connection".to_string());
        }
        protocol::parse_response(line.trim_end())
    }
}

/// The send half of a split [`Client`].
#[derive(Debug)]
pub struct ClientWriter {
    writer: TcpStream,
}

impl ClientWriter {
    /// Sends one job request without waiting for the response (see
    /// [`Client::send`]).
    ///
    /// # Errors
    ///
    /// Returns the socket error on a failed write.
    pub fn send(&mut self, spec: &JobSpec, deadline_ms: Option<u64>) -> Result<(), String> {
        let line = protocol::request_line(spec, deadline_ms);
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.writer
            .write_all(&bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("gateway send failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(2));
        assert_eq!(policy.delay(1), Duration::from_millis(4));
        assert_eq!(policy.delay(2), Duration::from_millis(8));
        assert_eq!(policy.delay(3), Duration::from_millis(16));
        assert_eq!(policy.delay(4), Duration::from_millis(20));
        assert_eq!(policy.delay(31), Duration::from_millis(20));
        // Shift overflow saturates instead of wrapping.
        assert_eq!(policy.delay(40), Duration::from_millis(20));
    }
}
