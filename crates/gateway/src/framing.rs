//! Newline framing over a socket with a read timeout.
//!
//! Both the gateway server and the router front tier read
//! newline-delimited JSON off sockets whose reads tick on a short
//! timeout (so the owning thread can notice shutdown and idle expiry).
//! A plain `BufRead::read_line` would lose a partial line at each
//! timeout tick; [`LineReader`] keeps the partial line buffered across
//! ticks and yields complete lines only.
//!
//! The hot path is [`LineReader::next_line_ref`], which yields each
//! line borrowed from a per-connection scratch buffer: after warm-up
//! the reader performs **zero allocations per line**, which matters
//! once batch requests make single lines carry hundreds of jobs.
//! [`LineReader::next_line`] is the owned-`String` convenience wrapper.

use std::io::{self, Read};
use std::net::TcpStream;

/// Longest request line a [`LineReader`] will buffer before reporting
/// the connection as failed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What one [`LineReader::next_line`] call produced.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (newline stripped; a preceding `\r` too).
    Line(String),
    /// The read timed out with no complete line; partial input stays
    /// buffered. The caller typically checks shutdown/idle state and
    /// calls again.
    TimedOut,
    /// The peer closed the connection cleanly.
    Eof,
    /// The connection failed (socket error or an over-long line).
    Failed,
}

/// What one [`LineReader::next_line_ref`] call produced: the borrowed
/// counterpart of [`LineEvent`]. The line borrows the reader's scratch
/// buffer and is valid until the next call.
#[derive(Debug)]
pub enum LineEventRef<'a> {
    /// A complete line (newline stripped; a preceding `\r` too),
    /// borrowed from the reader's reused scratch buffer.
    Line(&'a str),
    /// The read timed out with no complete line; partial input stays
    /// buffered.
    TimedOut,
    /// The peer closed the connection cleanly.
    Eof,
    /// The connection failed (socket error or an over-long line).
    Failed,
}

/// A newline-framed reader over a socket with a read timeout, keeping
/// partial lines buffered across timeout ticks.
#[derive(Debug)]
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Scratch the current line is decoded into — reused across lines
    /// so steady-state reads allocate nothing.
    line: String,
}

impl LineReader {
    /// Wraps `stream`. The caller is responsible for having set a read
    /// timeout if it wants [`LineEvent::TimedOut`] ticks.
    pub fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
            line: String::new(),
        }
    }

    /// Blocks until the next complete line, a timeout tick, EOF, or a
    /// failure. The returned line borrows this reader's scratch buffer
    /// (valid until the next call), so steady-state traffic pays no
    /// per-line allocation.
    pub fn next_line_ref(&mut self) -> LineEventRef<'_> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut end = pos;
                if end > 0 && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                self.line.clear();
                self.line
                    .push_str(&String::from_utf8_lossy(&self.buf[..end]));
                // A memmove of the tail, not a fresh allocation.
                self.buf.drain(..=pos);
                return LineEventRef::Line(&self.line);
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return LineEventRef::Failed;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEventRef::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return LineEventRef::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return LineEventRef::Failed,
            }
        }
    }

    /// [`LineReader::next_line_ref`] copied into an owned `String`, for
    /// callers that need to keep the line past the next read.
    pub fn next_line(&mut self) -> LineEvent {
        match self.next_line_ref() {
            LineEventRef::Line(line) => LineEvent::Line(line.to_owned()),
            LineEventRef::TimedOut => LineEvent::TimedOut,
            LineEventRef::Eof => LineEvent::Eof,
            LineEventRef::Failed => LineEvent::Failed,
        }
    }
}
