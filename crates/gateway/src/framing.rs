//! Newline framing over a socket with a read timeout.
//!
//! Both the gateway server and the router front tier read
//! newline-delimited JSON off sockets whose reads tick on a short
//! timeout (so the owning thread can notice shutdown and idle expiry).
//! A plain `BufRead::read_line` would lose a partial line at each
//! timeout tick; [`LineReader`] keeps the partial line buffered across
//! ticks and yields complete lines only.

use std::io::{self, Read};
use std::net::TcpStream;

/// Longest request line a [`LineReader`] will buffer before reporting
/// the connection as failed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What one [`LineReader::next_line`] call produced.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (newline stripped; a preceding `\r` too).
    Line(String),
    /// The read timed out with no complete line; partial input stays
    /// buffered. The caller typically checks shutdown/idle state and
    /// calls again.
    TimedOut,
    /// The peer closed the connection cleanly.
    Eof,
    /// The connection failed (socket error or an over-long line).
    Failed,
}

/// A newline-framed reader over a socket with a read timeout, keeping
/// partial lines buffered across timeout ticks.
#[derive(Debug)]
pub struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    /// Wraps `stream`. The caller is responsible for having set a read
    /// timeout if it wants [`LineEvent::TimedOut`] ticks.
    pub fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Blocks until the next complete line, a timeout tick, EOF, or a
    /// failure.
    pub fn next_line(&mut self) -> LineEvent {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return LineEvent::Failed;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return LineEvent::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Failed,
            }
        }
    }
}
