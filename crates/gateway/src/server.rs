//! The gateway server: a multi-threaded TCP front-end over the
//! `drift-serve` runtime.
//!
//! ```text
//!            acceptor thread (non-blocking listener)
//!                 │ spawns one reader per connection
//!   reader ──try_submit──▶ bounded JobQueue ──▶ worker pool (one
//!     │  shed: {"error":"overloaded"}            DriftAccelerator each,
//!     │                                          shared schedule cache)
//!     └─▶ writer thread ◀──reply channel──────────┘
//! ```
//!
//! Three properties the batch runtime does not need become load-bearing
//! here and are owned by this module:
//!
//! * **admission control** — submission uses the queue's non-blocking
//!   [`JobQueue::try_submit`]; a full queue sheds the request with a
//!   structured `overloaded` response instead of blocking the socket,
//!   and a deadline budget below the observed service-time estimate is
//!   shed as `deadline_unmeetable` before it can occupy a slot;
//! * **deadlines** — each request carries a millisecond budget from
//!   admission; workers check it when they dequeue the job *and* again
//!   after executing it, answering `deadline_exceeded` for expired
//!   work. With `--queue edf` the queue drains
//!   earliest-deadline-first instead of FIFO (`docs/SCHEDULING.md`);
//! * **graceful drain** — [`Gateway::shutdown`] stops the acceptor,
//!   lets readers wind down, flushes every accepted job's response
//!   through its connection writer, and only then closes the queue and
//!   joins the workers. No accepted job is lost.
//!
//! Stalled clients cannot pin threads: reads tick on a short timeout
//! (so readers notice shutdown and idle expiry), and writes time out
//! and degrade to discarding responses for that connection only.

use crate::framing::{LineEventRef, LineReader};
use crate::protocol::{
    self, ControlOp, Request, ERR_BAD_REQUEST, ERR_DEADLINE, ERR_OVERLOADED, ERR_UNMEETABLE,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use drift_core::accelerator::DriftAccelerator;
use drift_core::arch::paper_fabric;
use drift_core::schedule::ScheduleKey;
use drift_obs::{Recorder, SpanRecord, TraceDecision, TraceId, Tracer};
use drift_serve::cache::ScheduleCache;
use drift_serve::job::{result_line, JobOutcome, JobResult, JobSpec};
use drift_serve::persist::{open_and_preload, StoreBinding};
use drift_serve::queue::{job_queue_with_policy, Deadlined, JobQueue, QueuePolicy, WorkerHandle};
use drift_serve::worker::{execute_group, execute_job_traced, schedule_key_for};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check shutdown and idle expiry.
const READ_TICK: Duration = Duration::from_millis(100);
/// A connection writer gives a slow client this long per response
/// before treating the connection as stalled and discarding the rest.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Tunables for one gateway instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Worker threads executing jobs (at least 1).
    pub workers: usize,
    /// Maximum admitted jobs waiting in the queue; beyond this,
    /// requests are shed with `overloaded`.
    pub queue_depth: usize,
    /// Total schedules the shared cache may hold.
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Default per-request deadline budget in milliseconds, applied
    /// when a request carries no `deadline_ms` field. `0` disables the
    /// default (requests without a field get no deadline).
    pub default_deadline_ms: u64,
    /// Close a connection after this long without a complete request
    /// line. `0` disables idle expiry.
    pub idle_timeout_ms: u64,
    /// Queue discipline for admitted jobs: FIFO (default) or
    /// earliest-deadline-first (see `docs/SCHEDULING.md`).
    pub queue: QueuePolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 16,
            default_deadline_ms: 0,
            idle_timeout_ms: 30_000,
            queue: QueuePolicy::Fifo,
        }
    }
}

impl GatewayConfig {
    /// The default configuration with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        GatewayConfig {
            workers,
            ..GatewayConfig::default()
        }
    }
}

/// Request totals over a gateway's lifetime, returned by
/// [`Gateway::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewaySummary {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests refused with `overloaded` (queue full).
    pub shed: u64,
    /// Requests answered `deadline_exceeded`.
    pub expired: u64,
    /// Requests refused at admission with `deadline_unmeetable`: their
    /// budget was below the gateway's service-time estimate.
    pub unmeetable: u64,
    /// Lines that parsed as neither a job nor a control request.
    pub rejected: u64,
    /// Completed responses dropped because the client was gone or
    /// stalled past the write timeout.
    pub dropped: u64,
    /// Connections accepted over the lifetime.
    pub connections: u64,
}

impl GatewaySummary {
    /// One-line human rendering for the CLI's exit report.
    pub fn render(&self) -> String {
        format!(
            "gateway: {} connections, {} accepted, {} shed, {} expired, {} unmeetable, {} rejected, {} responses dropped",
            self.connections,
            self.accepted,
            self.shed,
            self.expired,
            self.unmeetable,
            self.rejected,
            self.dropped
        )
    }
}

/// Lifetime counters, kept as plain atomics so the exit summary works
/// even with the recorder disabled.
#[derive(Debug, Default)]
struct Tally {
    accepted: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    unmeetable: AtomicU64,
    rejected: AtomicU64,
    dropped: AtomicU64,
    connections: AtomicU64,
}

impl Tally {
    fn summary(&self) -> GatewaySummary {
        GatewaySummary {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            unmeetable: self.unmeetable.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// An exponentially-weighted moving average of observed job service
/// times, in microseconds. Admission uses it to shed requests whose
/// deadline budget could not be met even from an empty queue.
///
/// `0` means "no samples yet": the gateway never sheds as unmeetable
/// before at least one job has completed, so cold starts and tests
/// with no completed work keep the pre-estimator behaviour.
#[derive(Debug, Default)]
struct ServiceEstimator {
    ewma_us: AtomicU64,
}

impl ServiceEstimator {
    /// Folds one observed service time into the average (new/8 + old*7/8).
    fn observe(&self, service: Duration) {
        let sample = service.as_micros().min(u128::from(u64::MAX)) as u64;
        let prev = self.ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample.max(1)
        } else {
            (prev - prev / 8 + sample / 8).max(1)
        };
        self.ewma_us.store(next, Ordering::Relaxed);
    }

    /// The current estimate in microseconds; `0` until the first sample.
    fn estimate_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }
}

/// The sampled-trace state of an admitted job: which trace it belongs
/// to, the upstream parent span, and this gateway's request span id
/// (the parent of every span the gateway records for the job).
#[derive(Debug, Clone, Copy)]
struct JobTrace {
    trace: TraceId,
    parent: Option<u64>,
    req_span: u64,
}

/// One queued response line plus the trace info the connection writer
/// needs to record a `response_write` span (`None` for control acks
/// and untraced requests).
#[derive(Debug, Clone)]
struct Reply {
    line: String,
    trace: Option<(TraceId, u64)>,
}

impl Reply {
    fn plain(line: String) -> Reply {
        Reply { line, trace: None }
    }
}

/// One admitted request travelling from a connection reader to a
/// worker and back (as a rendered response line) to the writer.
#[derive(Debug, Clone)]
struct GatewayJob {
    spec: JobSpec,
    deadline: Option<Instant>,
    admitted: Instant,
    trace: Option<JobTrace>,
    reply: Sender<Reply>,
}

impl GatewayJob {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// True when the job cannot be answered in budget: already expired,
    /// or the remaining slack is smaller than the estimated service
    /// time (`estimate_us`, 0 = no estimate). Executing such a job can
    /// only produce a late result, so the worker discards it instead —
    /// without this predictive check EDF degrades under overload,
    /// because the earliest-deadline job is by construction the one
    /// most likely to expire mid-execution (docs/SCHEDULING.md).
    fn doomed(&self, now: Instant, estimate_us: u64) -> bool {
        self.deadline.is_some_and(|d| {
            d.saturating_duration_since(now).as_micros() <= u128::from(estimate_us)
        })
    }
}

impl Deadlined for GatewayJob {
    fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// State shared by every schedule-key group of one batch request: the
/// response slots (indexed by submission position, so assembly order is
/// the client's order no matter which worker finishes first) and the
/// countdown that tells the last group to assemble and send the single
/// batch response line.
#[derive(Debug)]
struct BatchShared {
    id: u64,
    total: usize,
    slots: Mutex<Vec<Option<String>>>,
    remaining: AtomicUsize,
    reply: Sender<Reply>,
    trace: Option<JobTrace>,
    admitted: Instant,
}

impl BatchShared {
    /// Fills one item's rendered payload; the filler of the last empty
    /// slot assembles and sends the batch response.
    fn settle_item(&self, shared: &Shared, pos: usize, line: String) {
        {
            let mut slots = self.slots.lock().expect("batch slots");
            debug_assert!(slots[pos].is_none(), "batch slot settled twice");
            slots[pos] = Some(line);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finish(shared);
        }
    }

    fn finish(&self, shared: &Shared) {
        let items: Vec<String> = {
            let mut slots = self.slots.lock().expect("batch slots");
            slots
                .iter_mut()
                .map(|slot| slot.take().expect("all batch slots settled"))
                .collect()
        };
        let line = protocol::batch_response_line(self.id, &items);
        shared
            .recorder
            .gauge_add("drift_gateway_inflight_requests", &[], -(self.total as i64));
        if shared.recorder.is_enabled() {
            shared.recorder.observe(
                "drift_gateway_request_latency_microseconds",
                &[],
                drift_obs::contract::LATENCY_US_BUCKETS,
                self.admitted
                    .elapsed()
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
            );
        }
        if let Some(t) = &self.trace {
            record_request_span(shared, t, self.id, self.admitted, "ok");
        }
        let reply = Reply {
            line,
            trace: self.trace.as_ref().map(|t| (t.trace, t.req_span)),
        };
        if self.reply.send(reply).is_err() {
            shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
            shared
                .recorder
                .counter_add("drift_gateway_responses_dropped_total", &[], 1);
        }
    }
}

/// The items of one batch that share a schedule key, executed together
/// on one worker so the key is solved/fetched exactly once
/// (`drift_serve::worker::execute_group`). `key == None` collects the
/// Select items, which carry no schedule key and execute per-item.
#[derive(Debug)]
struct GroupJob {
    key: Option<ScheduleKey>,
    /// Submission positions within the batch, parallel to `specs`.
    positions: Vec<usize>,
    specs: Vec<JobSpec>,
    /// The batch-wide deadline: the budget is shared by every item, so
    /// each group carries the same absolute instant.
    deadline: Option<Instant>,
    admitted: Instant,
    batch: Arc<BatchShared>,
}

impl GroupJob {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Same predictive check as [`GatewayJob::doomed`], using the
    /// single-job estimate as a conservative lower bound on the group's
    /// service time.
    fn doomed(&self, now: Instant, estimate_us: u64) -> bool {
        self.deadline.is_some_and(|d| {
            d.saturating_duration_since(now).as_micros() <= u128::from(estimate_us)
        })
    }
}

/// What travels through the gateway queue: a singleton request, or one
/// schedule-key group of a batch request. A batch occupies one queue
/// slot per *distinct schedule key*, which is what lets admission stay
/// a single capacity check while same-key floods collapse.
#[derive(Debug)]
enum QueueItem {
    Single(GatewayJob),
    Group(GroupJob),
}

impl Deadlined for QueueItem {
    fn deadline(&self) -> Option<Instant> {
        match self {
            QueueItem::Single(job) => job.deadline,
            QueueItem::Group(group) => group.deadline,
        }
    }
}

#[derive(Debug)]
struct Shared {
    config: GatewayConfig,
    recorder: Recorder,
    tracer: Tracer,
    /// Arrival sequence of accepted job requests, the head-sampling
    /// input when this gateway is the ingress edge.
    trace_seq: AtomicU64,
    cache: ScheduleCache,
    /// Hard stop: acceptor and readers exit at their next tick.
    stop: AtomicBool,
    /// A client requested a drain (`{"control":"shutdown"}`); the
    /// gateway's owner observes this via [`Gateway::draining`] and
    /// calls [`Gateway::shutdown`].
    drain: AtomicBool,
    tally: Tally,
    estimator: ServiceEstimator,
}

impl Shared {
    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.drain.load(Ordering::Relaxed)
    }
}

/// A running gateway: acceptor, connection threads, and worker pool.
///
/// Dropping the gateway performs the same graceful drain as
/// [`Gateway::shutdown`].
#[derive(Debug)]
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// The submit side of the queue. Connection readers hold clones of
    /// this `Arc`; after they are joined, dropping the slot here drops
    /// the final strong reference, which closes the queue and lets the
    /// workers drain out.
    queue: Option<Arc<JobQueue<QueueItem>>>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    /// The persistent schedule store, when started with one. Finished
    /// (flushed, possibly compacted) during shutdown, after the workers
    /// have stopped producing new schedules.
    store: Option<StoreBinding>,
}

impl Gateway {
    /// Binds `addr` (port 0 picks a free port) and starts the acceptor
    /// and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, config: GatewayConfig, recorder: Recorder) -> io::Result<Gateway> {
        Self::start_traced(addr, config, recorder, Tracer::disabled())
    }

    /// Like [`Gateway::start`], additionally recording distributed
    /// trace spans through `tracer`. With a disabled tracer the
    /// behaviour (and every response byte) is identical to `start`.
    pub fn start_traced(
        addr: &str,
        config: GatewayConfig,
        recorder: Recorder,
        tracer: Tracer,
    ) -> io::Result<Gateway> {
        Self::start_inner(addr, config, recorder, tracer, None)
    }

    /// Like [`Gateway::start_traced`], additionally backed by the
    /// persistent schedule store at `store` (created if absent). The
    /// store is loaded into the cache *before* the acceptor starts, so
    /// the very first connection sees the warm cache; newly solved
    /// schedules are appended in the background and flushed — with a
    /// compaction when the log has outgrown the live set — during
    /// shutdown. Warm-started gateways answer byte-identically to cold
    /// ones: schedule solving is deterministic, so a stored schedule is
    /// the schedule a cold solve would produce (`docs/PERSISTENCE.md`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, and store open/load failures (bad
    /// magic, future version, I/O) as `io::Error::other`. A corrupt
    /// record *tail* is not an error: the valid prefix loads and the
    /// damage is counted in `drift_store_records_skipped_total`.
    pub fn start_persistent(
        addr: &str,
        config: GatewayConfig,
        recorder: Recorder,
        tracer: Tracer,
        store: &Path,
    ) -> io::Result<Gateway> {
        Self::start_inner(addr, config, recorder, tracer, Some(store))
    }

    fn start_inner(
        addr: &str,
        config: GatewayConfig,
        recorder: Recorder,
        tracer: Tracer,
        store_path: Option<&Path>,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let config = GatewayConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            cache_capacity: config.cache_capacity.max(1),
            cache_shards: config.cache_shards.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            cache: ScheduleCache::with_recorder(
                config.cache_capacity,
                config.cache_shards,
                recorder.clone(),
            ),
            recorder,
            tracer,
            trace_seq: AtomicU64::new(0),
            config,
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            tally: Tally::default(),
            estimator: ServiceEstimator::default(),
        });
        shared
            .recorder
            .gauge_set("drift_serve_workers", &[], config.workers as i64);

        // Warm-start before anything can connect: the first request
        // already sees every schedule the previous run persisted.
        let store = store_path
            .map(|path| {
                open_and_preload(path, &shared.cache, shared.recorder.clone())
                    .map(|(_report, binding)| binding)
                    .map_err(io::Error::other)
            })
            .transpose()?;

        let (queue, handle) = job_queue_with_policy::<QueueItem>(config.queue, config.queue_depth);
        let queue = Arc::new(queue);
        let workers = (0..config.workers)
            .map(|i| {
                let handle = handle.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(handle, &shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        drop(handle);

        let conns = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gateway-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared, &queue, &conns))?
        };

        Ok(Gateway {
            addr,
            shared,
            queue: Some(queue),
            acceptor: Some(acceptor),
            conns,
            workers,
            store,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client has requested a drain via
    /// `{"control":"shutdown"}`. The owner should then call
    /// [`Gateway::shutdown`].
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::Relaxed)
    }

    /// Lifetime request totals so far.
    pub fn summary(&self) -> GatewaySummary {
        self.shared.tally.summary()
    }

    /// Gracefully drains the gateway: stop accepting, flush every
    /// accepted job's response, close the queue, join all threads.
    /// Returns the lifetime totals.
    pub fn shutdown(mut self) -> GatewaySummary {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> GatewaySummary {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers notice the stop flag at their next read tick and
        // exit; each joins its writer, which flushes the responses of
        // every job that connection had in flight (workers are still
        // running here, so those jobs finish).
        let conns = std::mem::take(&mut *self.conns.lock().expect("connection registry"));
        for conn in conns {
            let _ = conn.join();
        }
        // All submitters are gone: dropping the last queue handle
        // closes it, workers drain whatever is still buffered and exit.
        self.queue.take();
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
        // With the workers gone nothing else produces schedules: flush
        // the store's remaining appends and compact if it has outgrown
        // the live set. Persistence is best-effort on the way out — a
        // failed flush loses warm-start data, never responses.
        if let Some(binding) = self.store.take() {
            if let Err(e) = binding.finish(&self.shared.cache) {
                eprintln!("drift-gateway: schedule store flush failed: {e}");
            }
        }
        self.shared.tally.summary()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shutdown_in_place();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    queue: &Arc<JobQueue<QueueItem>>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    while !shared.should_stop() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let queue = Arc::clone(queue);
                let handle = std::thread::Builder::new()
                    .name("gateway-conn".to_string())
                    .spawn(move || connection(stream, &shared, &queue));
                if let Ok(handle) = handle {
                    let mut conns = conns.lock().expect("connection registry");
                    // Reap finished connections so a long-lived gateway
                    // does not accumulate dead handles.
                    conns.retain(|h| !h.is_finished());
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(READ_TICK),
            Err(_) => std::thread::sleep(READ_TICK),
        }
    }
}

/// One connection's reader: parses request lines, admits jobs, and
/// owns the paired writer thread's lifetime.
fn connection(stream: TcpStream, shared: &Arc<Shared>, queue: &JobQueue<QueueItem>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    shared.tally.connections.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .gauge_add("drift_gateway_connections", &[], 1);

    let (reply_tx, reply_rx) = unbounded::<Reply>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("gateway-writer".to_string())
            .spawn(move || writer_loop(write_half, &reply_rx, &shared))
    };

    let mut lines = LineReader::new(stream);
    let mut last_activity = Instant::now();
    let idle = shared.config.idle_timeout_ms;
    while !shared.should_stop() {
        // The borrowed variant keeps each request line in the reader's
        // reused scratch buffer: no per-line allocation even when batch
        // lines carry hundreds of jobs.
        match lines.next_line_ref() {
            LineEventRef::Line(line) => {
                last_activity = Instant::now();
                if !handle_line(line, shared, queue, &reply_tx) {
                    break;
                }
            }
            LineEventRef::TimedOut => {
                if idle > 0 && last_activity.elapsed() >= Duration::from_millis(idle) {
                    break;
                }
            }
            LineEventRef::Eof | LineEventRef::Failed => break,
        }
    }
    // Dropping our sender lets the writer exit once every in-flight
    // job's clone is gone — i.e. after all accepted work is answered.
    drop(reply_tx);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
    shared
        .recorder
        .gauge_add("drift_gateway_connections", &[], -1);
}

/// Handles one request line. Returns `false` when the connection
/// should stop reading (a shutdown control).
fn handle_line(
    line: &str,
    shared: &Shared,
    queue: &JobQueue<QueueItem>,
    reply: &Sender<Reply>,
) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    match protocol::parse_request(line) {
        Err(_) => {
            // Lenient by design: a malformed request is answered and
            // counted, never a reason to abort the stream.
            shared.tally.rejected.fetch_add(1, Ordering::Relaxed);
            shared
                .recorder
                .counter_add("drift_serve_jobs_rejected_total", &[], 1);
            let _ = reply.send(Reply::plain(protocol::error_line(None, ERR_BAD_REQUEST)));
            true
        }
        Ok(Request::Control(ControlOp::Ping)) => {
            // The ack advertises the queue discipline so router health
            // probes learn each shard's policy (docs/SCHEDULING.md).
            let _ = reply.send(Reply::plain(protocol::ping_ack_line(
                true,
                shared.config.queue.as_str(),
            )));
            true
        }
        Ok(Request::Control(ControlOp::Shutdown)) => {
            let _ = reply.send(Reply::plain(protocol::control_ack_line(
                ControlOp::Shutdown,
                true,
            )));
            shared.drain.store(true, Ordering::SeqCst);
            false
        }
        Ok(Request::Prewarm(entries)) => {
            // Reshard prewarming: the router pushes schedules whose
            // keys now hash here (docs/PERSISTENCE.md). Preloaded
            // entries bypass hit/miss accounting and the store spill —
            // they are transplants, not solves.
            let inserted = shared.cache.preload(&entries);
            shared.recorder.counter_add(
                "drift_gateway_prewarm_entries_total",
                &[],
                inserted as u64,
            );
            let _ = reply.send(Reply::plain(protocol::prewarm_ack_line(
                true,
                inserted as u64,
            )));
            true
        }
        Ok(Request::Job {
            spec,
            deadline_ms,
            trace,
        }) => {
            let admitted = Instant::now();
            // Resolve head sampling: honor an upstream decision; when
            // the request carries none, this gateway is the ingress
            // edge and decides from its arrival sequence.
            let decision = match trace {
                TraceDecision::Undecided if shared.tracer.is_enabled() => shared
                    .tracer
                    .decide(shared.trace_seq.fetch_add(1, Ordering::Relaxed)),
                other => other,
            };
            let job_trace = match (decision.context(), shared.tracer.is_enabled()) {
                (Some(ctx), true) => Some(JobTrace {
                    trace: ctx.trace_id,
                    parent: ctx.parent_span,
                    req_span: shared.tracer.new_span_id(),
                }),
                _ => None,
            };
            let budget = deadline_ms.unwrap_or(shared.config.default_deadline_ms);
            let deadline = (budget > 0).then(|| admitted + Duration::from_millis(budget));
            let id = spec.id;
            // Infeasibility shed: once at least one job has completed,
            // a budget below the observed service-time estimate cannot
            // be met even from an empty queue — refuse it immediately
            // instead of letting it occupy a slot and expire later.
            let estimate_us = shared.estimator.estimate_us();
            if deadline.is_some() && estimate_us > 0 && budget.saturating_mul(1000) < estimate_us {
                shared.tally.unmeetable.fetch_add(1, Ordering::Relaxed);
                shared.recorder.counter_add(
                    "drift_gateway_deadline_outcomes_total",
                    &[("outcome", "unmeetable")],
                    1,
                );
                if let Some(t) = &job_trace {
                    record_request_span(shared, t, id, admitted, "unmeetable");
                }
                let _ = reply.send(Reply::plain(protocol::error_line(Some(id), ERR_UNMEETABLE)));
                return true;
            }
            let job = GatewayJob {
                spec,
                deadline,
                admitted,
                trace: job_trace,
                reply: reply.clone(),
            };
            match queue.try_submit(QueueItem::Single(job)) {
                Ok(()) => {
                    shared.tally.accepted.fetch_add(1, Ordering::Relaxed);
                    shared
                        .recorder
                        .counter_add("drift_gateway_requests_accepted_total", &[], 1);
                    shared
                        .recorder
                        .gauge_add("drift_gateway_inflight_requests", &[], 1);
                }
                Err(item) => {
                    shared.tally.shed.fetch_add(1, Ordering::Relaxed);
                    shared
                        .recorder
                        .counter_add("drift_gateway_requests_shed_total", &[], 1);
                    if let QueueItem::Single(job) = item {
                        if let Some(t) = &job.trace {
                            record_request_span(shared, t, id, admitted, "overloaded");
                        }
                    }
                    let _ =
                        reply.send(Reply::plain(protocol::error_line(Some(id), ERR_OVERLOADED)));
                }
            }
            true
        }
        Ok(Request::Batch {
            id,
            specs,
            deadline_ms,
            trace,
        }) => {
            let admitted = Instant::now();
            let total = specs.len();
            // One sampling decision and one request span per batch: the
            // whole line is one request to the trace tier.
            let decision = match trace {
                TraceDecision::Undecided if shared.tracer.is_enabled() => shared
                    .tracer
                    .decide(shared.trace_seq.fetch_add(1, Ordering::Relaxed)),
                other => other,
            };
            let batch_trace = match (decision.context(), shared.tracer.is_enabled()) {
                (Some(ctx), true) => Some(JobTrace {
                    trace: ctx.trace_id,
                    parent: ctx.parent_span,
                    req_span: shared.tracer.new_span_id(),
                }),
                _ => None,
            };
            // The deadline budget is shared: one absolute instant for
            // every item, decremented once per hop upstream — never
            // once per item.
            let budget = deadline_ms.unwrap_or(shared.config.default_deadline_ms);
            let deadline = (budget > 0).then(|| admitted + Duration::from_millis(budget));
            // Whole-batch infeasibility shed, using the single-job
            // estimate as a lower bound on the batch's service time: if
            // even one job cannot finish in budget, none of the batch's
            // items can settle in time.
            let estimate_us = shared.estimator.estimate_us();
            if deadline.is_some() && estimate_us > 0 && budget.saturating_mul(1000) < estimate_us {
                shared
                    .tally
                    .unmeetable
                    .fetch_add(total as u64, Ordering::Relaxed);
                shared.recorder.counter_add(
                    "drift_gateway_deadline_outcomes_total",
                    &[("outcome", "unmeetable")],
                    total as u64,
                );
                if let Some(t) = &batch_trace {
                    record_request_span(shared, t, id, admitted, "unmeetable");
                }
                let _ = reply.send(Reply::plain(protocol::error_line(Some(id), ERR_UNMEETABLE)));
                return true;
            }
            let batch = Arc::new(BatchShared {
                id,
                total,
                slots: Mutex::new(vec![None; total]),
                remaining: AtomicUsize::new(total),
                reply: reply.clone(),
                trace: batch_trace,
                admitted,
            });
            // Group by schedule key, preserving submission order within
            // each group. Linear scan: batches carry at most a few
            // distinct keys by construction (that is the amortization).
            let fabric = paper_fabric();
            let mut groups: Vec<GroupJob> = Vec::new();
            for (pos, spec) in specs.into_iter().enumerate() {
                let key = schedule_key_for(&spec, fabric);
                match groups.iter_mut().find(|g| g.key == key) {
                    Some(group) => {
                        group.positions.push(pos);
                        group.specs.push(spec);
                    }
                    None => groups.push(GroupJob {
                        key,
                        positions: vec![pos],
                        specs: vec![spec],
                        deadline,
                        admitted,
                        batch: Arc::clone(&batch),
                    }),
                }
            }
            let items = groups.into_iter().map(QueueItem::Group).collect();
            match queue.try_submit_batch(items) {
                Ok(()) => {
                    shared
                        .tally
                        .accepted
                        .fetch_add(total as u64, Ordering::Relaxed);
                    shared.recorder.counter_add(
                        "drift_gateway_requests_accepted_total",
                        &[],
                        total as u64,
                    );
                    shared
                        .recorder
                        .gauge_add("drift_gateway_inflight_requests", &[], total as i64);
                    if shared.recorder.is_enabled() {
                        shared.recorder.observe(
                            "drift_gateway_batch_size",
                            &[],
                            drift_obs::contract::BATCH_SIZE_BUCKETS,
                            total as u64,
                        );
                    }
                }
                Err(_groups) => {
                    // All-or-shed: no group was enqueued, so dropping
                    // the groups (and the batch state inside) is safe —
                    // nothing will ever settle a slot.
                    shared.tally.shed.fetch_add(total as u64, Ordering::Relaxed);
                    shared.recorder.counter_add(
                        "drift_gateway_requests_shed_total",
                        &[],
                        total as u64,
                    );
                    if let Some(t) = &batch.trace {
                        record_request_span(shared, t, id, admitted, "overloaded");
                    }
                    let _ =
                        reply.send(Reply::plain(protocol::error_line(Some(id), ERR_OVERLOADED)));
                }
            }
            true
        }
    }
}

/// Records the gateway-tier root (`request`) span for a job that
/// settled now, labelled with how it settled.
fn record_request_span(
    shared: &Shared,
    trace: &JobTrace,
    job_id: u64,
    admitted: Instant,
    outcome: &str,
) {
    shared.tracer.record(&SpanRecord {
        service: None,
        trace: trace.trace,
        span: trace.req_span,
        parent: trace.parent,
        stage: "request",
        start: admitted,
        end: Instant::now(),
        job: Some(job_id),
        attrs: &[("outcome", outcome)],
    });
}

/// Writes response lines until every sender is gone. A write failure
/// (client gone or stalled past [`WRITE_TIMEOUT`]) flips the writer
/// into discard mode: remaining responses are drained and counted as
/// dropped so in-flight senders never block on a dead peer.
fn writer_loop(mut stream: TcpStream, replies: &Receiver<Reply>, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut dead = false;
    // Response scratch, reused across replies: after warm-up the writer
    // performs zero allocations per response line (batch responses can
    // run to hundreds of KiB, so recycling the capacity matters).
    let mut buf: Vec<u8> = Vec::new();
    for reply in replies.iter() {
        if !dead {
            let write_start = reply.trace.map(|t| (t, Instant::now()));
            buf.clear();
            buf.extend_from_slice(reply.line.as_bytes());
            buf.push(b'\n');
            dead = stream.write_all(&buf).is_err() || stream.flush().is_err();
            if let Some(((trace, req_span), start)) = write_start {
                shared.tracer.record(&SpanRecord {
                    service: None,
                    trace,
                    span: shared.tracer.new_span_id(),
                    parent: Some(req_span),
                    stage: "response_write",
                    start,
                    end: Instant::now(),
                    job: None,
                    attrs: &[("outcome", if dead { "dropped" } else { "ok" })],
                });
            }
            if !dead {
                continue;
            }
        }
        shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
        shared
            .recorder
            .counter_add("drift_gateway_responses_dropped_total", &[], 1);
    }
}

/// One worker: pulls admitted work until the queue closes, enforcing
/// the deadline at dequeue and again at response time.
fn worker_loop(jobs: WorkerHandle<QueueItem>, shared: &Shared) {
    let mut accel =
        DriftAccelerator::paper_config().expect("the paper configuration always builds");
    accel.set_recorder(shared.recorder.clone());
    while let Some(item) = jobs.next_job() {
        match item {
            QueueItem::Single(job) => run_single(job, &mut accel, shared),
            QueueItem::Group(group) => run_group(group, &mut accel, shared),
        }
    }
}

/// Executes one singleton request end to end.
fn run_single(job: GatewayJob, accel: &mut DriftAccelerator, shared: &Shared) {
    {
        let dequeued = Instant::now();
        if job.doomed(dequeued, shared.estimator.estimate_us()) {
            record_queue_wait(shared, &job, dequeued, "expired");
            respond_expired(shared, &job);
            return;
        }
        record_queue_wait(shared, &job, dequeued, "ok");
        // The execute span is also the parent of serve-tier spans
        // (cache_lookup/solve/execute), so its id is minted up front
        // and handed down through the executor.
        let exec = job
            .trace
            .map(|t| (t, shared.tracer.new_span_id(), Instant::now()));
        let (outcome, _cache_hit) = execute_job_traced(
            &job.spec,
            accel,
            &shared.cache,
            &shared.recorder,
            &shared.tracer,
            exec.map(|(t, span, _)| (t.trace, span)),
        );
        if let Some((t, span, start)) = exec {
            shared.tracer.record(&SpanRecord {
                service: None,
                trace: t.trace,
                span,
                parent: Some(t.req_span),
                stage: "execute",
                start,
                end: Instant::now(),
                job: Some(job.spec.id),
                attrs: &[
                    ("kind", job.spec.kind.label()),
                    (
                        "outcome",
                        if matches!(outcome, JobOutcome::Error { .. }) {
                            "error"
                        } else {
                            "ok"
                        },
                    ),
                ],
            });
        }
        shared.estimator.observe(dequeued.elapsed());
        if shared.recorder.is_enabled() {
            let is_error = matches!(outcome, JobOutcome::Error { .. });
            shared.recorder.counter_add(
                "drift_serve_jobs_total",
                &[
                    ("kind", job.spec.kind.label()),
                    ("outcome", if is_error { "error" } else { "ok" }),
                ],
                1,
            );
        }
        if job.expired(Instant::now()) {
            respond_expired(shared, &job);
            return;
        }
        if job.deadline.is_some() {
            shared.recorder.counter_add(
                "drift_gateway_deadline_outcomes_total",
                &[("outcome", "met")],
                1,
            );
        }
        let line = result_line(&JobResult {
            id: job.spec.id,
            outcome,
        });
        respond(shared, &job, line, "ok");
    }
}

/// Executes one schedule-key group of a batch: the group's key is
/// solved/fetched once, every item runs against the resolved schedule,
/// and each item's rendered payload — byte-identical to what the same
/// job would produce submitted singly — settles into its batch slot.
fn run_group(group: GroupJob, accel: &mut DriftAccelerator, shared: &Shared) {
    let dequeued = Instant::now();
    let n = group.specs.len();
    record_group_queue_wait(shared, &group, dequeued);
    if group.doomed(dequeued, shared.estimator.estimate_us()) {
        for (pos, spec) in group.positions.iter().zip(&group.specs) {
            count_expired_item(shared);
            group.batch.settle_item(
                shared,
                *pos,
                protocol::error_line(Some(spec.id), ERR_DEADLINE),
            );
        }
        return;
    }
    let results = execute_group(
        group.key.as_ref(),
        &group.specs,
        accel,
        &shared.cache,
        &shared.recorder,
    );
    // One dequeue-to-done observation per item, so the admission
    // estimator keeps tracking per-job service time.
    shared
        .estimator
        .observe(dequeued.elapsed() / n.max(1) as u32);
    let late = group.expired(Instant::now());
    for ((pos, spec), (outcome, _cache_hit)) in
        group.positions.iter().zip(&group.specs).zip(results)
    {
        if shared.recorder.is_enabled() {
            let is_error = matches!(outcome, JobOutcome::Error { .. });
            shared.recorder.counter_add(
                "drift_serve_jobs_total",
                &[
                    ("kind", spec.kind.label()),
                    ("outcome", if is_error { "error" } else { "ok" }),
                ],
                1,
            );
        }
        let line = if late {
            count_expired_item(shared);
            protocol::error_line(Some(spec.id), ERR_DEADLINE)
        } else {
            if group.deadline.is_some() {
                shared.recorder.counter_add(
                    "drift_gateway_deadline_outcomes_total",
                    &[("outcome", "met")],
                    1,
                );
            }
            result_line(&JobResult {
                id: spec.id,
                outcome,
            })
        };
        group.batch.settle_item(shared, *pos, line);
    }
}

/// The per-item expiry accounting shared by the dequeue-discard and
/// post-execution paths of [`run_group`].
fn count_expired_item(shared: &Shared) {
    shared.tally.expired.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .counter_add("drift_gateway_requests_expired_total", &[], 1);
    shared.recorder.counter_add(
        "drift_gateway_deadline_outcomes_total",
        &[("outcome", "missed")],
        1,
    );
}

/// Observes queue wait once per group (the group was one queue entry)
/// and records one `queue_wait` span under the batch's request span.
fn record_group_queue_wait(shared: &Shared, group: &GroupJob, dequeued: Instant) {
    if shared.recorder.is_enabled() {
        shared.recorder.observe(
            "drift_gateway_queue_wait_microseconds",
            &[("outcome", "ok")],
            drift_obs::contract::LATENCY_US_BUCKETS,
            dequeued
                .duration_since(group.admitted)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64,
        );
    }
    if let Some(t) = &group.batch.trace {
        shared.tracer.record(&SpanRecord {
            service: None,
            trace: t.trace,
            span: shared.tracer.new_span_id(),
            parent: Some(t.req_span),
            stage: "queue_wait",
            start: group.admitted,
            end: dequeued,
            job: Some(group.batch.id),
            attrs: &[("outcome", "ok")],
        });
    }
}

/// Observes how long an admitted job sat in the queue, labelled by what
/// happened at dequeue (`ok` = handed to a worker, `expired` = its
/// deadline had already passed).
fn record_queue_wait(shared: &Shared, job: &GatewayJob, dequeued: Instant, outcome: &str) {
    if shared.recorder.is_enabled() {
        shared.recorder.observe(
            "drift_gateway_queue_wait_microseconds",
            &[("outcome", outcome)],
            drift_obs::contract::LATENCY_US_BUCKETS,
            dequeued
                .duration_since(job.admitted)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64,
        );
    }
    // `outcome: "expired"` is the dequeue-discard path: the span shows
    // how long the doomed job sat in the queue before being thrown out.
    if let Some(t) = &job.trace {
        shared.tracer.record(&SpanRecord {
            service: None,
            trace: t.trace,
            span: shared.tracer.new_span_id(),
            parent: Some(t.req_span),
            stage: "queue_wait",
            start: job.admitted,
            end: dequeued,
            job: Some(job.spec.id),
            attrs: &[("outcome", outcome)],
        });
    }
}

fn respond_expired(shared: &Shared, job: &GatewayJob) {
    shared.tally.expired.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .counter_add("drift_gateway_requests_expired_total", &[], 1);
    shared.recorder.counter_add(
        "drift_gateway_deadline_outcomes_total",
        &[("outcome", "missed")],
        1,
    );
    respond(
        shared,
        job,
        protocol::error_line(Some(job.spec.id), ERR_DEADLINE),
        "deadline_exceeded",
    );
}

/// Enqueues a response on the job's connection writer and settles the
/// request's accounting (in-flight gauge, end-to-end latency, the
/// request trace span).
fn respond(shared: &Shared, job: &GatewayJob, line: String, outcome: &str) {
    let recorder = &shared.recorder;
    recorder.gauge_add("drift_gateway_inflight_requests", &[], -1);
    if recorder.is_enabled() {
        recorder.observe(
            "drift_gateway_request_latency_microseconds",
            &[],
            drift_obs::contract::LATENCY_US_BUCKETS,
            job.admitted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }
    if let Some(t) = &job.trace {
        record_request_span(shared, t, job.spec.id, job.admitted, outcome);
    }
    let reply = Reply {
        line,
        trace: job.trace.as_ref().map(|t| (t.trace, t.req_span)),
    };
    if job.reply.send(reply).is_err() {
        // The connection is fully gone (reader and writer exited).
        shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
        recorder.counter_add("drift_gateway_responses_dropped_total", &[], 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use drift_serve::job::JobKind;

    fn small_spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            seed: id + 1,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.25,
                fw: 0.5,
            },
        }
    }

    #[test]
    fn serves_jobs_and_pings_over_tcp() {
        let gw = Gateway::start(
            "127.0.0.1:0",
            GatewayConfig::with_workers(2),
            Recorder::disabled(),
        )
        .unwrap();
        let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();
        assert!(client.ping().unwrap());
        for id in 0..10 {
            let resp = client.submit(&small_spec(id), None).unwrap();
            match resp {
                protocol::Response::Result(r) => assert_eq!(r.id, id),
                other => panic!("unexpected response {other:?}"),
            }
        }
        let summary = gw.shutdown();
        assert_eq!(summary.accepted, 10);
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn bad_lines_get_bad_request_responses_and_the_stream_continues() {
        let gw = Gateway::start(
            "127.0.0.1:0",
            GatewayConfig::with_workers(1),
            Recorder::disabled(),
        )
        .unwrap();
        let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();
        client.send_raw("this is not json").unwrap();
        match client.recv().unwrap() {
            protocol::Response::Error { id, error } => {
                assert_eq!(id, None);
                assert_eq!(error, ERR_BAD_REQUEST);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The connection is still usable afterwards.
        assert!(matches!(
            client.submit(&small_spec(1), None).unwrap(),
            protocol::Response::Result(_)
        ));
        assert_eq!(gw.shutdown().rejected, 1);
    }

    #[test]
    fn drain_flag_is_set_by_the_shutdown_control() {
        let gw = Gateway::start(
            "127.0.0.1:0",
            GatewayConfig::with_workers(1),
            Recorder::disabled(),
        )
        .unwrap();
        assert!(!gw.draining());
        let mut client = Client::connect(&gw.local_addr().to_string()).unwrap();
        assert!(client.shutdown_server().unwrap());
        // The reader observes the flag on its next tick.
        let start = Instant::now();
        while !gw.draining() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(gw.draining());
        gw.shutdown();
    }
}
