//! A closed-loop load generator for the gateway.
//!
//! `drift loadgen` drives a running gateway with `clients` concurrent
//! connections sharing one deterministic synthetic job stream
//! ([`drift_serve::job::synthetic_jobs`], split round-robin so job ids
//! stay unique). The default mode is **closed-loop**: each client
//! submits its next job as soon as the previous response arrives,
//! absorbing shed responses with the client library's capped
//! exponential backoff — so measured throughput is the gateway's
//! sustainable service rate. With `open_loop_rps` set, clients instead
//! pace request *sends* at a fixed aggregate rate with no retries,
//! pipelining into the connection while a reaper thread drains
//! responses — offered load stays fixed no matter how slow the gateway
//! gets, which exposes the shed rate of the admission queue.

use crate::client::{Client, RetryPolicy};
use crate::protocol::{Response, ERR_DEADLINE, ERR_OVERLOADED, ERR_UNMEETABLE};
use drift_serve::job::{synthetic_jobs, synthetic_schedule_jobs, JobOutcome, JobResult, JobSpec};
use drift_serve::stats::percentile_ns;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total jobs across all clients.
    pub jobs: usize,
    /// Distinct GEMM shapes in the synthetic stream.
    pub shapes: usize,
    /// Master seed of the synthetic stream.
    pub seed: u64,
    /// Per-request deadline budget sent with every job.
    pub deadline_ms: Option<u64>,
    /// Adds a deterministic uniform jitter in `[0, J]` ms to each job's
    /// deadline budget (derived from `seed` and the job id), so budgets
    /// span `[D, D+J]` — the spread EDF exploits and FIFO cannot.
    /// Ignored without `deadline_ms`.
    pub deadline_jitter_ms: Option<u64>,
    /// Open-loop mode: pace request starts at this aggregate rate and
    /// do not retry sheds. `None` = closed loop with retry.
    pub open_loop_rps: Option<f64>,
    /// Open-loop only: send in on/off bursts instead of a steady
    /// stream. Requests are offered at `open_loop_rps` for the first
    /// half of every window of this many milliseconds and not at all
    /// for the second half (average rate = `open_loop_rps / 2`). This
    /// is the regime where queue ordering matters: a steady stream
    /// above capacity saturates the queue permanently, making the
    /// deadline-met count capacity-bound under *any* discipline, while
    /// bursts leave drain slack that EDF can exploit and FIFO cannot
    /// (docs/SCHEDULING.md). Ignored in closed-loop mode.
    pub burst_ms: Option<u64>,
    /// Closed-loop only: open a fresh TCP connection for every request
    /// and tear it down after the response, instead of holding one
    /// persistent connection per client. Measures connection-churn cost
    /// (see the connection-reuse guidance in `docs/SERVING.md`).
    pub connect_per_request: bool,
    /// Jobs per wire request. `1` submits singleton request lines;
    /// above `1` each client chunks its job stream and submits whole
    /// chunks with the batch wire protocol (`docs/SERVING.md`) — one
    /// request line in, one response line out per chunk. The batch id
    /// is the chunk's first job id, and the whole chunk shares that
    /// job's deadline budget draw (batches carry one `deadline_ms`).
    /// In open-loop mode batch *sends* are paced at the instant their
    /// first job would have been offered singleton, so the aggregate
    /// job rate still matches `open_loop_rps`.
    pub batch: usize,
    /// Small-job stream: offer only `Schedule` jobs (cycling the same
    /// shape/fraction tables as the mixed stream). Each distinct key
    /// is solved once and every repeat is a cache hit executing in
    /// microseconds, so per-request wire and admission overhead
    /// dominates the measurement — the regime where batching shows
    /// its full effect (the `EXPERIMENTS.md` batch sweep).
    pub schedule_only: bool,
    /// Backoff policy for closed-loop shed retries.
    pub retry: RetryPolicy,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            jobs: 200,
            shapes: 4,
            seed: 42,
            deadline_ms: None,
            deadline_jitter_ms: None,
            open_loop_rps: None,
            burst_ms: None,
            connect_per_request: false,
            batch: 1,
            schedule_only: false,
            retry: RetryPolicy::default(),
        }
    }
}

/// What one load-generation run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Jobs offered.
    pub jobs: usize,
    /// Requests answered with a result.
    pub ok: u64,
    /// Requests that ended shed (after retries ran out, or on first
    /// shed in open-loop mode).
    pub shed: u64,
    /// Requests answered `deadline_exceeded`.
    pub expired: u64,
    /// Requests refused at admission as `deadline_unmeetable`.
    pub unmeetable: u64,
    /// Of deadlined runs, the fraction of offered jobs answered with a
    /// result (`ok / jobs`); `None` when no deadline was configured.
    pub deadline_met_rate: Option<f64>,
    /// Of the `ok` responses, how many carried a job-level error
    /// outcome (the job ran and failed).
    pub job_errors: u64,
    /// Shed responses absorbed by closed-loop backoff.
    pub retries: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Completed (ok) responses per wall-clock second.
    pub throughput: f64,
    /// Median end-to-end request latency, µs (including retry time).
    pub p50_us: f64,
    /// 99th-percentile end-to-end request latency, µs.
    pub p99_us: f64,
    /// Every result received, sorted by job id.
    pub results: Vec<JobResult>,
}

impl LoadReport {
    /// Checks the run lost or duplicated nothing: every offered job is
    /// accounted for exactly once (ok, shed, or expired), and no result
    /// id repeats.
    ///
    /// # Errors
    ///
    /// Describes the first imbalance found.
    pub fn verify_complete(&self) -> Result<(), String> {
        let answered = self.ok + self.shed + self.expired + self.unmeetable;
        if answered != self.jobs as u64 {
            return Err(format!(
                "offered {} jobs but accounted for {answered} ({} ok, {} shed, {} expired, {} unmeetable)",
                self.jobs, self.ok, self.shed, self.expired, self.unmeetable
            ));
        }
        for pair in self.results.windows(2) {
            if pair[0].id == pair[1].id {
                return Err(format!("duplicated result id {}", pair[0].id));
            }
        }
        Ok(())
    }

    /// A one-line machine-readable JSON rendering of the summary for
    /// `drift loadgen --json`. Every field is numeric (or `null` for
    /// an unconfigured deadline-met rate), so the line needs no string
    /// escaping; the per-result payload is deliberately omitted.
    pub fn json_line(&self) -> String {
        let met = self
            .deadline_met_rate
            .map_or_else(|| "null".to_string(), |rate| format!("{rate:.6}"));
        format!(
            "{{\"jobs\":{},\"ok\":{},\"job_errors\":{},\"shed\":{},\"expired\":{},\
             \"unmeetable\":{},\"retries\":{},\"deadline_met_rate\":{met},\
             \"wall_ms\":{:.3},\"throughput_rps\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
            self.jobs,
            self.ok,
            self.job_errors,
            self.shed,
            self.expired,
            self.unmeetable,
            self.retries,
            self.wall.as_secs_f64() * 1e3,
            self.throughput,
            self.p50_us,
            self.p99_us,
        )
    }

    /// A short human rendering for the CLI.
    pub fn render(&self) -> String {
        let met = self
            .deadline_met_rate
            .map(|rate| format!(", deadline met {:.1}%", rate * 100.0))
            .unwrap_or_default();
        format!(
            "loadgen: {} jobs in {:.1} ms — {:.0} ok/s, {} ok ({} job errors), {} shed, \
             {} expired, {} unmeetable, {} retries, p50 {:.0} µs, p99 {:.0} µs{met}",
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
            self.throughput,
            self.ok,
            self.job_errors,
            self.shed,
            self.expired,
            self.unmeetable,
            self.retries,
            self.p50_us,
            self.p99_us,
        )
    }
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    shed: u64,
    expired: u64,
    unmeetable: u64,
    job_errors: u64,
    retries: u64,
    latencies_ns: Vec<u64>,
    results: Vec<JobResult>,
}

/// SplitMix64: the per-job deadline jitter's hash, so budgets are
/// reproducible from `(seed, id)` alone with no RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LoadGenConfig {
    /// The deadline budget for job `id`: `deadline_ms` plus this job's
    /// deterministic jitter draw from `[0, deadline_jitter_ms]`.
    pub fn budget_for(&self, id: u64) -> Option<u64> {
        let base = self.deadline_ms?;
        let jitter = match self.deadline_jitter_ms {
            Some(j) if j > 0 => {
                splitmix64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (j + 1)
            }
            _ => 0,
        };
        Some(base.saturating_add(jitter))
    }

    /// When (relative to the pacer's start) this client's `index`-th
    /// open-loop send should happen. Steady pacing spaces sends by
    /// `interval`; with `burst_ms` set, sends keep that spacing but
    /// come in windows — the first half of every `burst_ms` window
    /// offers load, the second half is silent.
    fn send_offset(&self, index: u64, interval: Duration) -> Duration {
        let Some(window_ms) = self.burst_ms.filter(|&w| w > 0) else {
            return interval.mul_f64(index as f64);
        };
        let window = Duration::from_millis(window_ms);
        let per_window = ((window.as_secs_f64() / 2.0) / interval.as_secs_f64())
            .floor()
            .max(1.0) as u64;
        window.mul_f64((index / per_window) as f64) + interval.mul_f64((index % per_window) as f64)
    }
}

/// Runs one load-generation pass against the gateway at `addr`.
///
/// # Errors
///
/// Reports connection failures, transport errors, and unexpected
/// responses (e.g. `bad_request` for a stream the generator itself
/// produced).
pub fn run(addr: &str, config: &LoadGenConfig) -> Result<LoadReport, String> {
    let clients = config.clients.max(1);
    let jobs = if config.schedule_only {
        synthetic_schedule_jobs(config.jobs, config.shapes, config.seed)
    } else {
        synthetic_jobs(config.jobs, config.shapes, config.seed)
    };
    // Round-robin partition: ids stay unique across clients and every
    // client sees the same kind mix.
    let mut slices: Vec<Vec<JobSpec>> = vec![Vec::new(); clients];
    for (i, job) in jobs.into_iter().enumerate() {
        slices[i % clients].push(job);
    }
    // Pace per client so the aggregate request-start rate is the
    // configured RPS.
    let pace = config
        .open_loop_rps
        .and_then(|rps| (rps > 0.0).then(|| Duration::from_secs_f64(clients as f64 / rps)));

    let start = Instant::now();
    let tallies: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .filter(|slice| !slice.is_empty())
            .map(|slice| scope.spawn(move || drive_client(addr, &slice, config, pace)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let wall = start.elapsed();

    let mut total = ClientTally::default();
    for tally in tallies {
        let tally = tally?;
        total.ok += tally.ok;
        total.shed += tally.shed;
        total.expired += tally.expired;
        total.unmeetable += tally.unmeetable;
        total.job_errors += tally.job_errors;
        total.retries += tally.retries;
        total.latencies_ns.extend(tally.latencies_ns);
        total.results.extend(tally.results);
    }
    total.latencies_ns.sort_unstable();
    total.results.sort_by_key(|r| r.id);
    let secs = wall.as_secs_f64();
    Ok(LoadReport {
        jobs: config.jobs,
        ok: total.ok,
        shed: total.shed,
        expired: total.expired,
        unmeetable: total.unmeetable,
        deadline_met_rate: (config.deadline_ms.is_some() && config.jobs > 0)
            .then(|| total.ok as f64 / config.jobs as f64),
        job_errors: total.job_errors,
        retries: total.retries,
        wall,
        throughput: if secs > 0.0 {
            total.ok as f64 / secs
        } else {
            0.0
        },
        p50_us: percentile_ns(&total.latencies_ns, 50.0) as f64 / 1_000.0,
        p99_us: percentile_ns(&total.latencies_ns, 99.0) as f64 / 1_000.0,
        results: total.results,
    })
}

fn drive_client(
    addr: &str,
    slice: &[JobSpec],
    config: &LoadGenConfig,
    pace: Option<Duration>,
) -> Result<ClientTally, String> {
    if config.connect_per_request && pace.is_none() {
        return drive_churning(addr, slice, config);
    }
    let client =
        Client::connect(addr).map_err(|e| format!("cannot connect to gateway at {addr}: {e}"))?;
    if let Some(interval) = pace {
        return if config.batch > 1 {
            drive_open_loop_batched(client, slice, config, interval)
        } else {
            drive_open_loop(client, slice, config, interval)
        };
    }
    let mut client = client;
    let mut tally = ClientTally::default();
    if config.batch > 1 {
        for chunk in slice.chunks(config.batch) {
            let begin = Instant::now();
            let batch_id = chunk[0].id;
            let sub = client.submit_batch_with_retry(
                batch_id,
                chunk,
                config.budget_for(batch_id),
                &config.retry,
            )?;
            let latency = begin.elapsed();
            tally.retries += u64::from(sub.retries);
            tally.account_batch(sub.response, chunk.len(), latency)?;
        }
        return Ok(tally);
    }
    for spec in slice {
        let begin = Instant::now();
        let sub = client.submit_with_retry(spec, config.budget_for(spec.id), &config.retry)?;
        let latency = begin.elapsed();
        tally.retries += u64::from(sub.retries);
        tally.account(sub.response, latency)?;
    }
    Ok(tally)
}

/// Closed-loop driving with one short-lived connection per request:
/// connect, submit (with the standard shed retries on that same
/// connection), read the response, drop the socket. The measured
/// latency includes the TCP setup and teardown — exactly the cost the
/// persistent-connection default amortises away.
fn drive_churning(
    addr: &str,
    slice: &[JobSpec],
    config: &LoadGenConfig,
) -> Result<ClientTally, String> {
    let mut tally = ClientTally::default();
    if config.batch > 1 {
        for chunk in slice.chunks(config.batch) {
            let begin = Instant::now();
            let mut client = Client::connect(addr)
                .map_err(|e| format!("cannot connect to gateway at {addr}: {e}"))?;
            let batch_id = chunk[0].id;
            let sub = client.submit_batch_with_retry(
                batch_id,
                chunk,
                config.budget_for(batch_id),
                &config.retry,
            )?;
            drop(client);
            let latency = begin.elapsed();
            tally.retries += u64::from(sub.retries);
            tally.account_batch(sub.response, chunk.len(), latency)?;
        }
        return Ok(tally);
    }
    for spec in slice {
        let begin = Instant::now();
        let mut client = Client::connect(addr)
            .map_err(|e| format!("cannot connect to gateway at {addr}: {e}"))?;
        let sub = client.submit_with_retry(spec, config.budget_for(spec.id), &config.retry)?;
        drop(client);
        let latency = begin.elapsed();
        tally.retries += u64::from(sub.retries);
        tally.account(sub.response, latency)?;
    }
    Ok(tally)
}

/// Open-loop driving: request *sends* are paced on this thread while a
/// reaper thread drains responses concurrently, so a slow gateway
/// cannot push back on the offered rate — the requests pipeline and the
/// bounded queue (not the client) decides what gets shed. A blocking
/// submit-then-wait loop here would silently turn the run into a
/// closed loop capped at `clients` in-flight requests.
fn drive_open_loop(
    client: Client,
    slice: &[JobSpec],
    config: &LoadGenConfig,
    interval: Duration,
) -> Result<ClientTally, String> {
    let (mut reader, mut writer) = client.split();
    // Send instants by job id, written by the pacer before each send
    // and consumed by the reaper to measure send-to-response latency.
    let sent: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::with_capacity(slice.len()));
    let expected = slice.len();

    std::thread::scope(|scope| {
        let pacer = scope.spawn(|| -> Result<(), String> {
            let start = Instant::now();
            for (index, spec) in slice.iter().enumerate() {
                let next_start = start + config.send_offset(index as u64, interval);
                let now = Instant::now();
                if next_start > now {
                    std::thread::sleep(next_start - now);
                }
                sent.lock()
                    .expect("send-time map")
                    .insert(spec.id, Instant::now());
                writer.send(spec, config.budget_for(spec.id))?;
            }
            Ok(())
        });

        let mut tally = ClientTally::default();
        for _ in 0..expected {
            let response = reader.recv()?;
            let begin = match &response {
                Response::Result(result) => sent.lock().expect("send-time map").remove(&result.id),
                Response::Error { id: Some(id), .. } => {
                    sent.lock().expect("send-time map").remove(id)
                }
                _ => None,
            };
            let latency = begin.map_or(Duration::ZERO, |b| b.elapsed());
            tally.account(response, latency)?;
        }
        pacer.join().expect("loadgen pacer panicked")?;
        Ok(tally)
    })
}

/// Open-loop driving with batched sends: the pacer offers whole
/// chunks at the instant their first job would have been sent
/// singleton (so the aggregate *job* rate matches the configured RPS),
/// while the reaper unpacks each single-line batch response — or a
/// flat whole-batch refusal — into per-item accounting.
fn drive_open_loop_batched(
    client: Client,
    slice: &[JobSpec],
    config: &LoadGenConfig,
    interval: Duration,
) -> Result<ClientTally, String> {
    let (mut reader, mut writer) = client.split();
    let chunks: Vec<&[JobSpec]> = slice.chunks(config.batch).collect();
    // Send instants and item counts by batch id, written by the pacer
    // before each send and consumed by the reaper to measure latency
    // and to fan a flat refusal out across the batch's items.
    let sent: Mutex<HashMap<u64, (Instant, usize)>> =
        Mutex::new(HashMap::with_capacity(chunks.len()));

    std::thread::scope(|scope| {
        let pacer = scope.spawn(|| -> Result<(), String> {
            let start = Instant::now();
            for (index, chunk) in chunks.iter().enumerate() {
                let next_start =
                    start + config.send_offset((index * config.batch) as u64, interval);
                let now = Instant::now();
                if next_start > now {
                    std::thread::sleep(next_start - now);
                }
                let batch_id = chunk[0].id;
                sent.lock()
                    .expect("send-time map")
                    .insert(batch_id, (Instant::now(), chunk.len()));
                writer.send_batch(batch_id, chunk, config.budget_for(batch_id))?;
            }
            Ok(())
        });

        let mut tally = ClientTally::default();
        for _ in 0..chunks.len() {
            let response = reader.recv()?;
            let id = match &response {
                Response::Batch { id, .. } => Some(*id),
                Response::Error { id, .. } => *id,
                _ => None,
            };
            let entry = id.and_then(|id| sent.lock().expect("send-time map").remove(&id));
            let (latency, expected) = entry.map_or((Duration::ZERO, config.batch), |(begin, n)| {
                (begin.elapsed(), n)
            });
            tally.account_batch(response, expected, latency)?;
        }
        pacer.join().expect("loadgen pacer panicked")?;
        Ok(tally)
    })
}

impl ClientTally {
    /// Accounts one batch response: a [`Response::Batch`] item by
    /// item, or a flat whole-batch refusal fanned out across every
    /// submitted item (batch admission is all-or-shed, so one
    /// `overloaded` line means `expected` jobs were shed).
    fn account_batch(
        &mut self,
        response: Response,
        expected: usize,
        latency: Duration,
    ) -> Result<(), String> {
        match response {
            Response::Batch { items, .. } => {
                if items.len() != expected {
                    return Err(format!(
                        "batch response carried {} items for {expected} submitted jobs",
                        items.len()
                    ));
                }
                for item in items {
                    self.account(item, latency)?;
                }
                Ok(())
            }
            Response::Error { id, error } => {
                for _ in 0..expected {
                    self.account(
                        Response::Error {
                            id,
                            error: error.clone(),
                        },
                        latency,
                    )?;
                }
                Ok(())
            }
            other => Err(format!("unexpected gateway batch response {other:?}")),
        }
    }

    fn account(&mut self, response: Response, latency: Duration) -> Result<(), String> {
        match response {
            Response::Result(result) => {
                self.ok += 1;
                self.latencies_ns
                    .push(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
                self.job_errors += u64::from(matches!(result.outcome, JobOutcome::Error { .. }));
                self.results.push(result);
            }
            Response::Error { error, .. } if error == ERR_OVERLOADED => self.shed += 1,
            Response::Error { error, .. } if error == ERR_DEADLINE => self.expired += 1,
            Response::Error { error, .. } if error == ERR_UNMEETABLE => self.unmeetable += 1,
            other => return Err(format!("unexpected gateway response {other:?}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn json_line_parses_and_carries_every_counter() {
        let report = LoadReport {
            jobs: 10,
            ok: 7,
            shed: 1,
            expired: 1,
            unmeetable: 1,
            deadline_met_rate: Some(0.7),
            job_errors: 2,
            retries: 3,
            wall: Duration::from_millis(250),
            throughput: 28.0,
            p50_us: 1234.5,
            p99_us: 9876.5,
            results: Vec::new(),
        };
        let value: Value =
            serde_json::from_str(&report.json_line()).expect("json_line must be valid JSON");
        let num = |key: &str| match value.get(key) {
            Some(Value::U64(v)) => *v as f64,
            Some(Value::I64(v)) => *v as f64,
            Some(Value::F64(v)) => *v,
            other => panic!("field {key} missing or non-numeric: {other:?}"),
        };
        assert_eq!(num("jobs"), 10.0);
        assert_eq!(num("ok"), 7.0);
        assert_eq!(num("job_errors"), 2.0);
        assert_eq!(num("shed"), 1.0);
        assert_eq!(num("expired"), 1.0);
        assert_eq!(num("unmeetable"), 1.0);
        assert_eq!(num("retries"), 3.0);
        assert!((num("deadline_met_rate") - 0.7).abs() < 1e-9);
        assert!((num("wall_ms") - 250.0).abs() < 1e-6);
        assert!((num("throughput_rps") - 28.0).abs() < 1e-6);
        assert!((num("p50_us") - 1234.5).abs() < 1e-6);
        assert!((num("p99_us") - 9876.5).abs() < 1e-6);
    }

    #[test]
    fn json_line_renders_missing_deadline_rate_as_null() {
        let report = LoadReport {
            jobs: 0,
            ok: 0,
            shed: 0,
            expired: 0,
            unmeetable: 0,
            deadline_met_rate: None,
            job_errors: 0,
            retries: 0,
            wall: Duration::ZERO,
            throughput: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
            results: Vec::new(),
        };
        let value: Value =
            serde_json::from_str(&report.json_line()).expect("json_line must be valid JSON");
        assert_eq!(value.get("deadline_met_rate"), Some(&Value::Null));
    }
}
