//! Dynamic precision quantization of a language model: compares FP32,
//! static INT8, and Drift on the perplexity proxy, the Table-1
//! workflow of the paper.
//!
//! ```text
//! cargo run --release --example llm_quantization
//! ```

use drift::core::selector::DriftPolicy;
use drift::nn::datagen::TokenProfile;
use drift::nn::engine::TinyTransformer;
use drift::nn::eval::perplexity_proxy;
use drift::quant::policy::StaticHighPolicy;
use drift::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TinyTransformer::llm_like(5, 64)?;
    let inputs: Vec<Tensor> = (0..16)
        .map(|i| TokenProfile::llm().generate(32, model.hidden(), 100 + i as u64))
        .collect::<Result<_, _>>()?;

    let anchor = 17.48; // the paper's GPT2-XL FP32 perplexity on WikiText
    let fp32 = perplexity_proxy(&model, &inputs, None, anchor)?;
    let int8 = perplexity_proxy(&model, &inputs, Some(&StaticHighPolicy), anchor)?;
    let drift = perplexity_proxy(&model, &inputs, Some(&DriftPolicy::new(0.1)?), anchor)?;

    println!("perplexity proxy (lower is better, anchored at GPT2-XL/Wiki):");
    println!("  fp32   {:.2}", fp32.perplexity);
    println!(
        "  int8   {:.2}  (ΔCE {:.4})",
        int8.perplexity, int8.delta_ce
    );
    println!(
        "  drift  {:.2}  (ΔCE {:.4}) at {:.1}% 4-bit computation",
        drift.perplexity,
        drift.delta_ce,
        drift.low_fraction * 100.0
    );
    println!();
    println!(
        "drift computes {:.0}% of activations at 4 bits while staying within",
        drift.low_fraction * 100.0
    );
    println!(
        "{:.1}% of the INT8 perplexity.",
        (drift.perplexity / int8.perplexity - 1.0) * 100.0
    );
    Ok(())
}
