//! One BERT-base layer across the four accelerators of the paper's
//! Figure 7: Eyeriss (FP32), BitFusion (static INT8), DRQ
//! (variable-speed dynamic), and Drift (dataflow splitting + balanced
//! scheduling).
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use drift::accel::accelerator::Accelerator;
use drift::accel::bitfusion::BitFusion;
use drift::accel::drq::DrqAccelerator;
use drift::accel::eyeriss::Eyeriss;
use drift::accel::gemm::{GemmShape, GemmWorkload};
use drift::core::accelerator::DriftAccelerator;
use drift::core::selector::DriftPolicy;
use drift::nn::datagen::TokenProfile;
use drift::nn::lower::annotate;
use drift::nn::lower::GemmOp;
use drift::nn::zoo::ModelFamily;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The BERT-base QKV projection at sequence length 128.
    let op = GemmOp {
        name: "bert.qkv".to_string(),
        shape: GemmShape::new(128, 768, 2304)?,
        repeat: 1,
    };
    let policy = DriftPolicy::new(0.027)?;
    let dynamic = annotate(&op, ModelFamily::Bert, &TokenProfile::bert(), &policy, 42)?;
    let uniform = GemmWorkload::uniform("bert.qkv", op.shape, false);
    println!(
        "workload {}: {:.1}% of tokens and {:.1}% of weight columns at 4 bits\n",
        op.shape,
        dynamic.low_compute_fraction() * 100.0,
        (1.0 - dynamic.weight_high_fraction()) * 100.0
    );

    let mut eyeriss = Eyeriss::paper_config()?;
    let mut bitfusion = BitFusion::int8()?;
    let mut drq = DrqAccelerator::paper_config()?;
    let mut drift = DriftAccelerator::paper_config()?;

    let reports = [
        eyeriss.execute(&uniform)?,
        bitfusion.execute(&uniform)?,
        drq.execute(&dynamic)?,
        drift.execute(&dynamic)?,
    ];
    let base = reports[0].cycles as f64;
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>12}",
        "design", "cycles", "speedup", "stalls", "energy (nJ)"
    );
    for r in &reports {
        println!(
            "{:<10} {:>10} {:>7.2}x {:>8} {:>12.1}",
            r.accelerator,
            r.cycles,
            base / r.cycles as f64,
            r.stall_cycles,
            r.energy.total_pj() / 1000.0
        );
    }
    println!("\ndrift maps each precision pair to its own systolic array, so the");
    println!("dynamic workload runs stall-free; DRQ pays occupancy stalls and");
    println!("speed-switch bubbles on the same precision stream.");
    Ok(())
}
