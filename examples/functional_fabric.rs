//! The full control path at value level: precision selection → integer
//! coding → dispatch → four register-level systolic arrays → merged
//! output, verified against the exact integer GEMM and the
//! dequantize-then-f32 engine path.
//!
//! ```text
//! cargo run --release --example functional_fabric
//! ```

use drift::accel::gemm::{GemmShape, GemmWorkload};
use drift::core::arch::dispatch::DispatchPlan;
use drift::core::arch::functional::{run_split_gemm, FunctionalArray};
use drift::core::selector::DriftPolicy;
use drift::quant::intgemm::{int_gemm, CodedMatrix};
use drift::quant::Precision;
use drift::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Token-dispersed activations and tame weights.
    let (m, k, n) = (24usize, 48usize, 16usize);
    let acts = Tensor::from_fn(vec![m, k], |i| {
        let t = i / k;
        0.01 * (1 + t) as f32 * (((i * 29) % 13) as f32 - 6.0) / 6.0
    })?;
    let weights = Tensor::from_fn(vec![k, n], |i| ((i * 17 % 11) as f32 - 5.0) * 0.05)?;

    // Selector → integer codes with per-row/column scales.
    let policy = DriftPolicy::new(0.2)?;
    let ca = CodedMatrix::encode_rows(&acts, Precision::INT8, &policy)?;
    let cb = CodedMatrix::encode_cols(&weights, Precision::INT8, &policy)?;
    println!(
        "selector: {:.0}% of rows and {:.0}% of columns at 4 bits",
        ca.low_fraction(Precision::INT8) * 100.0,
        cb.low_fraction(Precision::INT8) * 100.0
    );

    // Dispatch plan from the same decisions.
    let shape = GemmShape::new(m, k, n)?;
    let workload = GemmWorkload::new(
        "fabric",
        shape,
        ca.precisions()
            .iter()
            .map(|p| *p == Precision::INT8)
            .collect(),
        cb.precisions()
            .iter()
            .map(|p| *p == Precision::INT8)
            .collect(),
    )?;
    let plan = DispatchPlan::build(&workload, None)?;

    // Four register-level arrays compute the four tiles concurrently.
    let grids = [
        FunctionalArray::new(4, 4)?,
        FunctionalArray::new(4, 8)?,
        FunctionalArray::new(8, 4)?,
        FunctionalArray::new(8, 8)?,
    ];
    let split = run_split_gemm(&ca, &cb, &plan, Some(grids))?;
    println!(
        "split fabric: quadrant cycles {:?}, makespan {}",
        split.quadrant_cycles, split.makespan
    );

    // Verify against the monolithic exact integer GEMM.
    let reference = int_gemm(&ca, &cb)?;
    let max_err = split
        .output
        .iter()
        .zip(reference.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max deviation from the monolithic integer GEMM: {max_err:.2e}");
    assert!(max_err < 1e-4);
    println!("dataflow splitting computes exactly the same numbers, stall-free.");
    Ok(())
}
