//! A CNN inference pipeline under dynamic precision: synthetic image →
//! im2col → region-granular precision selection → mixed-precision
//! forward pass, comparing Drift and DRQ fidelity on the kind of data
//! DRQ was designed for.
//!
//! ```text
//! cargo run --release --example cnn_pipeline
//! ```

use drift::core::selector::DriftPolicy;
use drift::nn::datagen::ImageProfile;
use drift::nn::engine::{ForwardMode, Model, TinyCnn};
use drift::nn::eval::classification_fidelity;
use drift::quant::drq::DrqPolicy;
use drift::quant::policy::StaticHighPolicy;
use drift::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TinyCnn::resnet_like(11)?;
    let inputs: Vec<Tensor> = (0..32)
        .map(|i| {
            ImageProfile::natural().generate(
                model.input_channels(),
                model.input_hw(),
                model.input_hw(),
                500 + i as u64,
            )
        })
        .collect::<Result<_, _>>()?;

    // A single forward, to show the per-layer decisions.
    let policy = DriftPolicy::new(0.05)?;
    let out = model.forward(&inputs[0], &ForwardMode::quantized(&policy))?;
    println!(
        "per-conv 4-bit fractions for one image: {:?}",
        out.layer_fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect::<Vec<_>>()
    );

    // Fidelity across the batch: on CNN data both dynamic schemes hold
    // up (the paper's Fig. 6), because DRQ's region assumption is valid
    // here.
    let anchor = 69.8; // ResNet18's ImageNet top-1 as the anchor
    let int8 = classification_fidelity(&model, &inputs, &StaticHighPolicy, anchor)?;
    let drq = classification_fidelity(&model, &inputs, &DrqPolicy::new(1.0)?, anchor)?;
    let drift = classification_fidelity(&model, &inputs, &policy, anchor)?;
    println!("\nanchored accuracy (4-bit share):");
    println!("  int8   {:.1}", int8.anchored_accuracy);
    println!(
        "  drq    {:.1} ({:.0}%)",
        drq.anchored_accuracy,
        drq.low_fraction * 100.0
    );
    println!(
        "  drift  {:.1} ({:.0}%)",
        drift.anchored_accuracy,
        drift.low_fraction * 100.0
    );
    Ok(())
}
