//! Quickstart: dynamic precision quantization of one activation tensor
//! and execution of the resulting mixed-precision GEMM on the Drift
//! accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use drift::accel::accelerator::Accelerator;
use drift::accel::gemm::{GemmShape, GemmWorkload};
use drift::core::accelerator::DriftAccelerator;
use drift::core::selector::DriftPolicy;
use drift::quant::policy::run_policy;
use drift::quant::Precision;
use drift::tensor::dist::{Laplace, Sampler};
use drift::tensor::subtensor::SubTensorScheme;
use drift::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An activation tensor with heterogeneous token scales — the
    //    sub-tensor dynamics of the paper's Figure 1.
    let mut rng = drift::tensor::rng::seeded(7);
    let (tokens, hidden) = (64usize, 256usize);
    let mut data = Vec::with_capacity(tokens * hidden);
    for t in 0..tokens {
        let scale = 0.02 * (1.0 + t as f64); // scales spread 64x
        let lap = Laplace::new(0.0, scale)?;
        data.extend(lap.sample_f32(&mut rng, hidden));
    }
    let acts = Tensor::from_vec(vec![tokens, hidden], data)?;

    // 2. Run the Drift selection algorithm per token (Eqs. 5-6).
    let policy = DriftPolicy::new(0.3)?;
    let run = run_policy(
        &acts,
        &SubTensorScheme::token(hidden),
        Precision::INT8,
        &policy,
    )?;
    println!(
        "drift selected {} of {} tokens for 4-bit ({:.1}% of elements)",
        run.low_subtensors(),
        run.decisions.len(),
        run.low_fraction() * 100.0
    );

    // 3. Build the mixed-precision GEMM workload those decisions imply.
    let act_high: Vec<bool> = run.decisions.iter().map(|d| !d.decision.is_low()).collect();
    let shape = GemmShape::new(tokens, hidden, 512)?;
    let workload = GemmWorkload::new("quickstart", shape, act_high, vec![false; 512])?;

    // 4. Execute on the Drift accelerator: the fabric splits into four
    //    stall-free systolic arrays sized by the online scheduler.
    let mut drift = DriftAccelerator::paper_config()?;
    let report = drift.execute(&workload)?;
    println!(
        "drift: {} cycles ({} stalls), energy {:.1} nJ",
        report.cycles,
        report.stall_cycles,
        report.energy.total_pj() / 1000.0
    );
    if let Some(schedule) = drift.last_schedule() {
        println!("fabric partition: {:?}", schedule.partition.geometries());
    }
    Ok(())
}
