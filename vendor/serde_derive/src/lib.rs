//! Offline stand-in for [`serde_derive`](https://crates.io/crates/serde_derive).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually declares — structs with named
//! fields, and enums whose variants are unit, newtype, or struct-like —
//! without `syn`/`quote` (unavailable offline). The input item is
//! parsed directly from the `proc_macro` token trees, and the generated
//! impls target the vendored `serde` value model, producing the same
//! externally tagged layout real serde would.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed derive target.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    /// A tuple struct with `arity` unnamed fields. Arity 1 (newtype)
    /// serializes transparently, as real serde does.
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

/// Skips `#[...]` attribute pairs (including rendered doc comments).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the named fields of a brace-delimited body, returning the
/// field names in declaration order.
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_visibility(&tokens, skip_attributes(&tokens, i));
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:`, then skip the type up to a comma at angle depth 0.
        debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'));
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses the derive input item (struct or enum with named shapes).
fn parse_item(input: &TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = skip_visibility(&tokens, skip_attributes(&tokens, 0));
    let keyword = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
            {
                return Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(&g.stream()),
                };
            }
            Some(_) => i += 1, // generics/where are absent in this workspace; tolerate tokens
            None => panic!("serde derive: `{name}` has no brace-delimited body"),
        }
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Counts the unnamed fields of a tuple-struct body (top-level commas
/// at angle depth 0 separate fields).
fn count_tuple_fields(body: &TokenStream) -> usize {
    let mut arity = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in body.clone() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

/// `#[derive(Serialize)]`: renders the item into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(&input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(entries)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let inner = if arity == 1 {
                // Newtype structs are transparent, like real serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),\n"))
                    .collect();
                format!("::serde::Value::Seq(vec![\n{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 {inner}\n\
                 }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n")
                        }
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(inner) => ::serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push((\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Map(inner))])\n\
                                 }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    wrap_impl(&body)
}

/// `#[derive(Deserialize)]`: rebuilds the item from a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(&input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(entries, \"{f}\", \"{name}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let entries = v.as_map().ok_or_else(|| \
                 ::serde::DeError::new(format!(\"expected map for {name}, got {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                     }}\n}}"
                )
            } else {
                let inits: String = (0..arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                             ::serde::DeError::new(\"tuple struct {name} too short\"))?)?,\n"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let items = v.as_seq().ok_or_else(|| \
                     ::serde::DeError::new(\"expected sequence for tuple struct {name}\"))?;\n\
                     ::std::result::Result::Ok({name}(\n{inits}))\n\
                     }}\n}}"
                )
            }
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "\"{vn}\" => return ::serde::Deserialize::from_value(payload)\
                             .map({name}::{vn}),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::from_field(entries, \"{f}\", \
                                         \"{name}::{vn}\")?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let entries = payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected map for {name}::{vn}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n\
                                 }}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::Str(tag) = v {{\n\
                 match tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let ::serde::Value::Map(outer) = v {{\n\
                 if outer.len() == 1 {{\n\
                 let (tag, payload) = (&outer[0].0, &outer[0].1);\n\
                 match tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                 }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::new(\
                 format!(\"unrecognised {name} value: {{v:?}}\")))\n\
                 }}\n}}"
            )
        }
    };
    wrap_impl(&body)
}

/// Wraps generated impls with lint silencing (generated code is exempt
/// from the workspace's pedantic expectations).
fn wrap_impl(body: &str) -> TokenStream {
    format!("#[automatically_derived]\n#[allow(clippy::all, unused_mut)]\n{body}")
        .parse()
        .expect("serde derive emitted invalid Rust")
}
