//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Reproduces the macro-and-strategy surface this workspace's property
//! tests use: `proptest! { fn case(x in strategy, ..) { .. } }` with
//! numeric range strategies, `any::<bool>()`, and
//! `proptest::collection::vec`. Each test runs a fixed number of
//! deterministic cases (seeded from the test name, overridable via
//! `PROPTEST_CASES`); there is no shrinking — a failure reports the
//! case index and seed so it can be replayed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// The deterministic generator behind each test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategy {
    ($($t:ty as $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_signed_strategy!(i8 as i64, i16 as i64, i32 as i64, i64 as i64, isize as i64);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// An element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The test-runner types (compatibility module).
pub mod test_runner {
    pub use super::{TestCaseError, TestRng};
}

/// Everything the `proptest!` test files import.
pub mod prelude {
    pub use super::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use super::{Arbitrary, Strategy, TestCaseError};
}

/// Number of cases per property (`PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Runs the generated cases for one property. Used by [`proptest!`].
///
/// # Panics
///
/// Panics when a case fails its assertions or too many cases are
/// rejected by `prop_assume!`.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    // FNV-1a of the property name seeds the whole run: deterministic
    // across processes, distinct across properties.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        seed ^= u64::from(*byte);
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let target = cases();
    let mut passed = 0u64;
    let mut attempt = 0u64;
    let max_attempts = target.saturating_mul(32);
    while passed < target {
        assert!(
            attempt < max_attempts,
            "property `{name}`: too many inputs rejected ({passed}/{target} accepted)"
        );
        let case_seed = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` failed at case {attempt} (seed {case_seed:#x}): {message}"
                );
            }
        }
        attempt += 1;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strategy), __proptest_rng);
                    )*
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless `cond` holds (draws a fresh input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3usize..10, y in -2.0f64..2.0, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _generated: bool = flag; // bool strategy produces a value
        }

        #[test]
        fn vec_strategy_honours_size(
            xs in crate::collection::vec(0u64..5, 2..6),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::run_cases("always_fails", |_| Err(crate::TestCaseError::fail("nope")));
    }
}
