//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Provides the `channel` module surface this workspace uses: MPMC
//! [`channel::bounded`] / [`channel::unbounded`] queues with cloneable
//! senders *and* receivers, blocking send/recv with backpressure, and
//! crossbeam's disconnect semantics (recv drains remaining messages
//! after all senders drop; send fails once all receivers drop). Built
//! on `std::sync` rather than lock-free rings — the workloads queued
//! through it are milliseconds long, so queue overhead is noise.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (consumers compete for messages).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Returns the message that could not be sent.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is returned.
        Full(T),
        /// Every receiver is gone; the message is returned.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Returns the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(message) | TrySendError::Disconnected(message) => message,
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates a bounded channel: `send` blocks once `capacity`
    /// messages are in flight (backpressure).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(capacity.max(1)))
    }

    /// Creates an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Delivers a message, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message inside [`SendError`] when every
        /// [`Receiver`] has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().expect("channel lock poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(message));
                }
                match shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = shared.not_full.wait(state).expect("channel lock poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(message);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Delivers a message only if it fits right now, never
        /// blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when the channel is at capacity;
        /// [`TrySendError::Disconnected`] when every [`Receiver`] has
        /// been dropped. Both return the message.
        pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().expect("channel lock poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(message));
            }
            if let Some(cap) = shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(message));
                }
            }
            state.queue.push_back(message);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// The number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// [`Sender`] has been dropped (remaining messages are always
        /// drained first).
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(message) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = shared.not_empty.wait(state).expect("channel lock poisoned");
            }
        }

        /// Takes the next message if one is ready.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued;
        /// [`TryRecvError::Disconnected`] when additionally every
        /// sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().expect("channel lock poisoned");
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Takes the next message, blocking at most `timeout` while the
        /// channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time;
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// and every [`Sender`] has been dropped (remaining messages
        /// are always drained first).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let shared = &*self.shared;
            let mut state = shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(message) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (next, result) = shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock poisoned");
                state = next;
                if result.timed_out() && state.queue.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking message iterator; ends when the channel disconnects.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_one_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = channel::bounded(4);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let blocked = {
            let tx = tx.clone();
            thread::spawn(move || {
                tx.send(3).unwrap();
            })
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(tx.len(), 2, "third send must be blocked by capacity");
        assert_eq!(rx.recv().unwrap(), 1);
        blocked.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_send_never_blocks() {
        let (tx, rx) = channel::bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(2), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_drains_after_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out_delivers_and_drains() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        // A sender arriving mid-wait wakes the receiver.
        let sender = {
            let tx = tx.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(6).unwrap();
            })
        };
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(6));
        sender.join().unwrap();
        // Disconnect still drains queued messages first.
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
