//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! Implements exactly the extension surface this workspace uses on top
//! of [`rand_core::RngCore`]: `gen::<T>()` for the primitive types the
//! reproduction samples, and `gen_range` over half-open and inclusive
//! integer ranges. Floating-point generation uses the standard
//! 53-bit-mantissa construction, so distributions built on it behave
//! like upstream `rand`.

#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Types drawable from the "standard" distribution: uniform over the
/// whole domain for integers and `bool`, uniform over `[0, 1)` for
/// floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits scaled into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing random-generation extension trait.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-drawable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u64..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&c));
        }
    }
}
