//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Serializes the vendored [`serde::Value`] model to JSON text and
//! parses JSON text back. Covers the full JSON grammar (escapes,
//! `\uXXXX` including surrogate pairs, exponent-form numbers); floats
//! print with `{:?}` so every finite value round-trips exactly.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats, which JSON cannot express.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats, which JSON cannot express.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            // `{:?}` is the shortest representation that round-trips.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i| {
                write_value(&items[i], out, indent, depth + 1)
            })?;
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i| {
                write_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, out, indent, depth + 1)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let b = self.peek().ok_or_else(|| Error::new("truncated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)));
            }
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("drift".to_string())),
            ("cycles".to_string(), Value::I64(12345)),
            ("util".to_string(), Value::F64(0.875)),
            (
                "tags".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"drift","cycles":12345,"util":0.875,"tags":[true,null]}"#
        );
        let pretty = to_string_pretty(&Raw(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"drift\""));
    }

    #[test]
    fn parses_nested_json() {
        let parsed: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(parsed, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\none\ttab \"quoted\" back\\slash \u{1F600} \u{7}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        #[allow(clippy::excessive_precision)]
        // deliberately over-precise: asserts round-tripping truncates
        for x in [0.1f64, 1e-300, -2.5e17, 123456789.123456789] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
