//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The real serde is a zero-copy visitor framework; this stand-in is a
//! self-describing value model: `Serialize` renders a type into a
//! [`Value`] tree and `Deserialize` rebuilds it. The derive macros (in
//! the sibling `serde_derive` crate) generate the same externally
//! tagged shapes serde's JSON layer produces — structs become maps,
//! unit enum variants become strings, data-carrying variants become
//! one-entry maps — so the JSON written by the vendored `serde_json`
//! matches what the real stack would emit for this workspace's types.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (and `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside the `i64` range.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: extracts and deserializes one struct field.
///
/// # Errors
///
/// Returns [`DeError`] when the key is missing or its value mismatches.
pub fn from_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}` for {ty}")))?;
    T::from_value(v).map_err(|e| DeError::new(format!("field `{key}` of {ty}: {e}")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers can parse arbitrary
// documents into the raw tree (serde_json's `from_str::<Value>`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(narrow) => Value::I64(narrow),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::I64(n) if *n >= 0 => <$t>::try_from(*n as u64).ok(),
                    Value::U64(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        v
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::I64(n) => <$t>::try_from(*n).ok(),
                    Value::U64(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        v
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::new(format!("expected sequence, got {}", v.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::new(format!("expected map for Range, got {}", v.kind())))?;
        Ok(from_field::<T>(entries, "start", "Range")?..from_field::<T>(entries, "end", "Range")?)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element sequence")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_reports_kind() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected u64"));
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
