//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock means a panicking thread died holding
//! it — this wrapper propagates the panic rather than pretending the
//! protected data is still coherent.

#![warn(missing_docs)]

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with a poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("mutex poisoned by a panicking thread")
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("mutex poisoned by a panicking thread")
    }
}

/// A reader-writer lock with a poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .expect("rwlock poisoned by a panicking thread")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .expect("rwlock poisoned by a panicking thread")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot waits in place on an `&mut` guard; std consumes
        // and returns it. Bridge with a dummy swap via raw replace.
        take_mut(guard, |g| {
            self.inner.wait(g).expect("mutex poisoned while waiting")
        });
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replaces `*slot` with `f(old)` without requiring `T: Default`.
/// Aborts the process if `f` panics (the guard would be forfeited).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }
}
