//! Offline stand-in for [`rand_core`](https://crates.io/crates/rand_core).
//!
//! The workspace vendors the minimal trait surface it actually uses so
//! that `cargo build --offline` succeeds in a hermetic container: a
//! source of raw random words ([`RngCore`]) and deterministic
//! construction from seeds ([`SeedableRng`]). Generators remain fully
//! deterministic per seed, which is all the reproduction relies on.

#![warn(missing_docs)]

/// A source of uniformly distributed random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A random generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like upstream `rand_core` so streams stay
    /// stable if the real crate ever replaces this stand-in.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea, Flood 2014), as in rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }
}
