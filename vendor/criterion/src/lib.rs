//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the benchmark-declaration surface this workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! throughput annotation — over a simple calibrated wall-clock loop.
//! No statistics engine: each benchmark warms up, picks an iteration
//! count targeting ~100 ms of measurement, and reports mean
//! nanoseconds per iteration (plus derived throughput).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` sizes its setup batches (API compatibility; the
/// stand-in re-runs setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A throughput annotation: converts ns/iter into elements or bytes
/// per second in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The measurement driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

/// Target measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(100);

impl Bencher {
    /// Measures `routine`, keeping its output live via [`black_box`].
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and calibrate: time one iteration, then scale.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Measures `routine` with per-iteration state from `setup`,
    /// excluding setup time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.ns_per_iter = measured.as_nanos() as f64 / iters as f64;
    }
}

/// The top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    /// Runs one parametrised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report lines were already printed).
    pub fn finish(self) {}
}

fn run_one(label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.ns_per_iter;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns),
        Throughput::Bytes(n) => {
            format!("  {:>12.1} MiB/s", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
    });
    println!(
        "{label:<48} {:>14} ns/iter{}",
        format_ns(ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.1}k", ns / 1e3)
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a benchmark group function, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        bencher.iter_batched(
            || vec![0u8; 1024],
            |v| v.into_iter().map(u64::from).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(bencher.ns_per_iter > 0.0);
    }
}
