//! Offline stand-in for [`rand_chacha`](https://crates.io/crates/rand_chacha).
//!
//! Implements the genuine ChaCha block function (Bernstein 2008) with 8
//! double-rounds behind the [`rand_core`] traits. Streams are
//! deterministic per seed and stable across platforms — the property
//! the reproduction's figures depend on — though they are not
//! bit-identical to upstream `rand_chacha` (which interleaves words in
//! a SIMD-friendly order). Nothing in this workspace depends on the
//! upstream word order.

#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// A ChaCha keystream generator with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and stream constant; rebuilt per block.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word in `block`.
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k", the ChaCha constant.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal mixing.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn keystream_is_not_degenerate() {
        // The block function must actually mix: successive words differ
        // and bits are roughly balanced.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let words: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        let total = 1024 * 32;
        let frac = f64::from(ones) / f64::from(total);
        assert!((0.45..0.55).contains(&frac), "bit balance {frac}");
    }

    #[test]
    fn blocks_advance_with_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
