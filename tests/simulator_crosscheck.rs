//! Cross-verification of the timing models — the reproduction's
//! analogue of the paper's "cycle-accurate simulator cross-verified
//! with the RTL implementation".

use drift::accel::gemm::{GemmShape, GemmWorkload};
use drift::accel::systolic::{
    analytical_cycles, pass_count, simulate_stream, simulate_stream_stepped, ArrayGeometry,
};
use drift::core::arch::paper_fabric;
use drift::core::schedule::{balanced_schedule, oracle_lower_bound, quadrant_latency};
use drift::quant::Precision;
use proptest::prelude::*;

proptest! {
    /// The closed-form stream model equals the cycle-stepped reference
    /// for arbitrary occupancy streams.
    #[test]
    fn stream_closed_form_matches_stepped(
        occupancies in proptest::collection::vec(1u32..5, 1..200),
        rows in 1usize..32,
        cols in 1usize..32,
    ) {
        let geo = ArrayGeometry::new(rows, cols).unwrap();
        let closed = simulate_stream(&occupancies, geo, 1).total_cycles;
        let stepped = simulate_stream_stepped(&occupancies, geo);
        prop_assert_eq!(closed, stepped);
    }

    /// A stall-free stream reproduces Eq. 7 exactly.
    #[test]
    fn uniform_stream_equals_eq7(
        m in 1usize..500,
        k in 1usize..2048,
        n in 1usize..2048,
        rows in 1usize..32,
        cols in 1usize..40,
    ) {
        let shape = GemmShape::new(m, k, n).unwrap();
        let geo = ArrayGeometry::new(rows, cols).unwrap();
        let passes = pass_count(shape, Precision::INT8, Precision::INT4, geo);
        let report = simulate_stream(&vec![1u32; m], geo, passes);
        prop_assert_eq!(
            report.total_cycles,
            analytical_cycles(shape, Precision::INT8, Precision::INT4, geo)
        );
        prop_assert_eq!(report.stall_cycles, 0);
    }

    /// Eq. 7 monotonicity: more precision bits never cost fewer cycles.
    #[test]
    fn eq7_monotone_in_precision(
        m in 1usize..300,
        k in 1usize..1024,
        n in 1usize..1024,
    ) {
        let shape = GemmShape::new(m, k, n).unwrap();
        let geo = paper_fabric();
        let c44 = analytical_cycles(shape, Precision::INT4, Precision::INT4, geo);
        let c84 = analytical_cycles(shape, Precision::INT8, Precision::INT4, geo);
        let c88 = analytical_cycles(shape, Precision::INT8, Precision::INT8, geo);
        prop_assert!(c44 <= c84);
        prop_assert!(c84 <= c88);
    }

    /// The balanced schedule is feasible, at least as good as any
    /// single-quadrant whole-fabric run of the dominant tile, and never
    /// beats the perfect-balance oracle.
    #[test]
    fn schedule_is_sound(
        m in 8usize..512,
        n in 8usize..512,
        fa in 0.0f64..1.0,
        fw in 0.0f64..1.0,
    ) {
        let shape = GemmShape::new(m, 512, n).unwrap();
        let ah = (m as f64 * fa) as usize;
        let wh = (n as f64 * fw) as usize;
        let w = GemmWorkload::new(
            "prop",
            shape,
            (0..m).map(|i| i < ah).collect(),
            (0..n).map(|j| j < wh).collect(),
        )
        .unwrap();
        let quads = w.quadrants();
        let schedule = balanced_schedule(paper_fabric(), &quads).unwrap();
        // Lower bound.
        let lb = oracle_lower_bound(paper_fabric(), &quads);
        prop_assert!(schedule.makespan as f64 >= lb - 1e-9);
        // Within pass-quantisation slack of serialising everything on
        // the whole fabric. (A concurrent column-split partition can
        // legitimately exceed the serial sum when a tile's column-pass
        // ceiling jumps at the narrower width, so equality is not a
        // sound bound — but 4x plus a constant is.)
        let serial: u64 = quads
            .iter()
            .map(|q| quadrant_latency(q, Some(paper_fabric())).unwrap())
            .sum();
        prop_assert!(schedule.makespan <= serial * 4 + 10_000);
        // Makespan is the max of the reported latencies.
        prop_assert_eq!(
            schedule.makespan,
            schedule.latencies.into_iter().max().unwrap()
        );
    }
}

/// The four-array execution conserves work: Drift's busy BG-cycles for
/// a mixed workload never exceed BitFusion's all-INT8 busy cycles on
/// the same GEMM (lower precision strictly reduces bit-work).
#[test]
fn drift_busy_cycles_bounded_by_int8_work() {
    use drift::accel::accelerator::Accelerator;
    use drift::accel::bitfusion::BitFusion;
    use drift::core::accelerator::DriftAccelerator;

    let shape = GemmShape::new(256, 512, 512).unwrap();
    let w = GemmWorkload::new(
        "mixed",
        shape,
        (0..256).map(|i| i % 5 == 0).collect(),
        (0..512).map(|j| j % 4 == 0).collect(),
    )
    .unwrap();
    let mut drift = DriftAccelerator::paper_config().unwrap();
    let rd = drift.execute(&w).unwrap();
    let mut bf = BitFusion::int8().unwrap();
    let rb = bf
        .execute(&GemmWorkload::uniform("hi", shape, false))
        .unwrap();
    assert!(
        rd.busy_unit_cycles <= rb.busy_unit_cycles,
        "drift work {} exceeds int8 work {}",
        rd.busy_unit_cycles,
        rb.busy_unit_cycles
    );
}
