//! Property-based tests of the Drift algorithm's core invariants.

use drift::core::selector::DriftPolicy;
use drift::quant::capability::RepresentationCapability;
use drift::quant::convert::ConversionChoice;
use drift::quant::linear::{dequantize_slice, quantize_slice, QuantParams};
use drift::quant::policy::{Decision, PrecisionPolicy, TensorContext};
use drift::quant::Precision;
use drift::tensor::stats::SummaryStats;
use proptest::prelude::*;

fn stats_from(values: &[f32]) -> SummaryStats {
    SummaryStats::from_slice(values)
}

proptest! {
    /// Eq. 5's guarantee: whatever the sub-tensor, the selected
    /// conversion's representation range covers its largest magnitude.
    #[test]
    fn range_choice_always_covers(
        abs_max in 1e-6f64..100.0,
        tensor_max in 1e-3f64..100.0,
    ) {
        let abs_max = abs_max.min(tensor_max);
        let params = QuantParams::from_abs_max(tensor_max, Precision::INT8);
        let policy = DriftPolicy::new(1.0).unwrap();
        let choice = policy.range_choice(abs_max, &params).unwrap();
        let cap = RepresentationCapability::of(&choice, &params);
        // Covers within quantization slack: a value that survived
        // INT8 quantization never exceeds the INT8 range either.
        prop_assert!(cap.range >= abs_max.min(params.representation_range()) - 1e-9);
    }

    /// δ-monotonicity: raising the threshold never converts more.
    #[test]
    fn delta_monotone(
        values in proptest::collection::vec(-10.0f32..10.0, 4..64),
        d1 in 0.0f64..10.0,
        d2 in 0.0f64..10.0,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let stats = stats_from(&values);
        let global = stats_from(&values);
        let ctx = TensorContext {
            global,
            params: QuantParams::from_abs_max(global.abs_max(), Precision::INT8),
        };
        let p_lo = DriftPolicy::new(lo).unwrap();
        let p_hi = DriftPolicy::new(hi).unwrap();
        // If the stricter threshold converts, the looser one must too.
        if p_hi.decide(&ctx, &stats).is_low() {
            prop_assert!(p_lo.decide(&ctx, &stats).is_low());
        }
    }

    /// Quantize→dequantize error is bounded by half a step for every
    /// in-range value.
    #[test]
    fn quantization_error_bounded(
        values in proptest::collection::vec(-100.0f32..100.0, 1..128),
    ) {
        let (codes, params) = quantize_slice(&values, Precision::INT8).unwrap();
        let restored = dequantize_slice(&codes, &params);
        for (a, b) in values.iter().zip(&restored) {
            prop_assert!(
                f64::from((a - b).abs()) <= params.scale * 0.5 + 1e-5,
                "{a} vs {b} with step {}", params.scale
            );
        }
    }

    /// Every (hc, lc) conversion satisfies Eq. 2 and its saturation
    /// bound: converted codes always fit the low precision.
    #[test]
    fn conversions_respect_low_range(code in -127i32..=127) {
        for choice in ConversionChoice::enumerate(Precision::INT8, Precision::INT4) {
            prop_assert_eq!(
                choice.hc() + choice.lp().bits() + choice.lc(),
                choice.hp().bits()
            );
            let low = choice.apply_value(code);
            prop_assert!(choice.lp().contains(low), "{low} out of INT4 range");
        }
    }

    /// The decision is a pure function of the statistics.
    #[test]
    fn decisions_are_deterministic(
        values in proptest::collection::vec(-5.0f32..5.0, 2..32),
        delta in 0.0f64..5.0,
    ) {
        let stats = stats_from(&values);
        let ctx = TensorContext {
            global: stats,
            params: QuantParams::from_abs_max(stats.abs_max(), Precision::INT8),
        };
        let policy = DriftPolicy::new(delta).unwrap();
        prop_assert_eq!(policy.decide(&ctx, &stats), policy.decide(&ctx, &stats));
    }

    /// An all-zero sub-tensor always converts (it is exactly
    /// representable at any width), regardless of δ.
    #[test]
    fn zero_subtensors_always_convert(delta in 0.0f64..1e6) {
        let stats = stats_from(&[0.0, 0.0, 0.0]);
        let ctx = TensorContext {
            global: stats_from(&[1.0, -1.0]),
            params: QuantParams::from_abs_max(1.0, Precision::INT8),
        };
        let policy = DriftPolicy::new(delta).unwrap();
        prop_assert!(matches!(policy.decide(&ctx, &stats), Decision::Convert(_)));
    }
}

// SummaryStats merge is associative enough for parallel reductions.
proptest! {
    #[test]
    fn stats_merge_matches_sequential(
        a in proptest::collection::vec(-10.0f32..10.0, 1..64),
        b in proptest::collection::vec(-10.0f32..10.0, 1..64),
    ) {
        let mut merged = stats_from(&a);
        merged.merge(&stats_from(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let sequential = stats_from(&all);
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - sequential.variance()).abs() < 1e-5);
        prop_assert_eq!(merged.abs_max(), sequential.abs_max());
    }
}
