//! End-to-end integration: synthetic data → precision selection →
//! GEMM workloads → all four accelerators, asserting the orderings the
//! paper's evaluation rests on.

use drift::accel::accelerator::Accelerator;
use drift::accel::bitfusion::BitFusion;
use drift::accel::drq::DrqAccelerator;
use drift::accel::eyeriss::Eyeriss;
use drift::accel::gemm::GemmWorkload;
use drift::core::accelerator::DriftAccelerator;
use drift::core::selector::DriftPolicy;
use drift::nn::lower::{model_low_fraction, model_workloads};
use drift::nn::zoo;

/// The full BERT pipeline, end to end: annotate with Drift's selector,
/// execute everywhere, check the paper's ordering.
#[test]
fn bert_pipeline_orders_accelerators_correctly() {
    let desc = zoo::bert_base();
    let policy = DriftPolicy::new(0.027).unwrap();
    let workloads = model_workloads(&desc, &policy, 42).unwrap();
    assert!(
        model_low_fraction(&workloads) > 0.6,
        "BERT should be mostly 4-bit"
    );

    let mut eyeriss = Eyeriss::paper_config().unwrap();
    let mut bitfusion = BitFusion::int8().unwrap();
    let mut drq = DrqAccelerator::paper_config().unwrap();
    let mut drift = DriftAccelerator::paper_config().unwrap();

    let (mut t_e, mut t_b, mut t_q, mut t_d) = (0u64, 0u64, 0u64, 0u64);
    for (op, w) in &workloads {
        let uniform = GemmWorkload::uniform(op.name.clone(), op.shape, false);
        t_e += eyeriss.execute(&uniform).unwrap().cycles * op.repeat;
        t_b += bitfusion.execute(&uniform).unwrap().cycles * op.repeat;
        t_q += drq.execute(w).unwrap().cycles * op.repeat;
        let rd = drift.execute(w).unwrap();
        assert_eq!(rd.stall_cycles, 0, "{}: drift must not stall", op.name);
        t_d += rd.cycles * op.repeat;
    }
    assert!(
        t_e > t_b,
        "eyeriss {t_e} should be slowest (bitfusion {t_b})"
    );
    assert!(t_b > t_q, "bitfusion {t_b} should trail drq {t_q}");
    assert!(t_q > t_d, "drq {t_q} should trail drift {t_d}");
    // The paper's headline factors, loosely: drift 5-15x over eyeriss,
    // 1.5-3.5x over bitfusion, 1.2-2.5x over drq.
    let over_eyeriss = t_e as f64 / t_d as f64;
    let over_bitfusion = t_b as f64 / t_d as f64;
    let over_drq = t_q as f64 / t_d as f64;
    assert!(
        (5.0..20.0).contains(&over_eyeriss),
        "vs eyeriss {over_eyeriss}"
    );
    assert!(
        (1.5..3.5).contains(&over_bitfusion),
        "vs bitfusion {over_bitfusion}"
    );
    assert!((1.2..2.5).contains(&over_drq), "vs drq {over_drq}");
}

/// Energy ordering and breakdown sanity for a ViT workload.
#[test]
fn vit_energy_ordering() {
    let desc = zoo::vit_b16();
    let policy = DriftPolicy::new(0.045).unwrap();
    let workloads = model_workloads(&desc, &policy, 42).unwrap();

    let mut eyeriss = Eyeriss::paper_config().unwrap();
    let mut bitfusion = BitFusion::int8().unwrap();
    let mut drift = DriftAccelerator::paper_config().unwrap();
    let (mut e_e, mut e_b, mut e_d) = (0.0f64, 0.0, 0.0);
    for (op, w) in workloads.iter().take(6) {
        let uniform = GemmWorkload::uniform(op.name.clone(), op.shape, false);
        e_e += eyeriss.execute(&uniform).unwrap().energy.total_pj() * op.repeat as f64;
        e_b += bitfusion.execute(&uniform).unwrap().energy.total_pj() * op.repeat as f64;
        let rd = drift.execute(w).unwrap();
        let f = rd.energy.fractions();
        assert!(f.iter().all(|&x| x > 0.0), "all energy components present");
        e_d += rd.energy.total_pj() * op.repeat as f64;
    }
    assert!(
        e_e > e_b && e_b > e_d,
        "energy ordering: {e_e} > {e_b} > {e_d}"
    );
}

/// The DRQ collapse on interleaved precisions (the ViT-B result): DRQ's
/// advantage over BitFusion shrinks as the high fraction rises.
#[test]
fn drq_advantage_shrinks_with_high_fraction() {
    let shape = drift::accel::gemm::GemmShape::new(1024, 768, 768).unwrap();
    let mut ratios = Vec::new();
    for pct in [10usize, 30, 50] {
        let high = shape.m * pct / 100;
        let act_high: Vec<bool> = (0..shape.m)
            .map(|i| i % (shape.m / high).max(1) == 0)
            .collect();
        let w = GemmWorkload::new("mix", shape, act_high, vec![false; 768]).unwrap();
        let mut bf = BitFusion::int8().unwrap();
        let c_bf = bf
            .execute(&GemmWorkload::uniform("hi", shape, false))
            .unwrap()
            .compute_cycles;
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let c_drq = drq.execute(&w).unwrap().compute_cycles;
        ratios.push(c_bf as f64 / c_drq as f64);
    }
    assert!(
        ratios[0] > ratios[1] && ratios[1] > ratios[2],
        "drq advantage should shrink: {ratios:?}"
    );
}

/// Determinism: the whole pipeline is reproducible bit-for-bit.
#[test]
fn pipeline_is_deterministic() {
    let desc = zoo::deit_s();
    let policy = DriftPolicy::new(0.04).unwrap();
    let a = model_workloads(&desc, &policy, 9).unwrap();
    let b = model_workloads(&desc, &policy, 9).unwrap();
    for ((_, wa), (_, wb)) in a.iter().zip(&b) {
        assert_eq!(wa.act_high(), wb.act_high());
        assert_eq!(wa.weight_high(), wb.weight_high());
    }
    let mut d1 = DriftAccelerator::paper_config().unwrap();
    let mut d2 = DriftAccelerator::paper_config().unwrap();
    let r1 = d1.execute(&a[0].1).unwrap();
    let r2 = d2.execute(&b[0].1).unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.energy, r2.energy);
}
