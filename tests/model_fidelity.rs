//! Integration tests of the accuracy-evaluation invariants behind
//! Fig. 6 and Table 1.

use drift::core::selector::DriftPolicy;
use drift::nn::datagen::{ImageProfile, TokenProfile};
use drift::nn::engine::{TinyCnn, TinyTransformer};
use drift::nn::eval::{classification_fidelity, perplexity_proxy};
use drift::quant::drq::DrqPolicy;
use drift::quant::policy::StaticHighPolicy;
use drift::tensor::Tensor;

fn bert_inputs(n: usize, hidden: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            TokenProfile::bert()
                .generate_classified(16, hidden, i % 10, 2.5, seed + i as u64)
                .unwrap()
        })
        .collect()
}

/// The Fig. 6 transformer story: Drift holds accuracy near INT8 at a
/// high 4-bit share; DRQ at a comparable share loses much more.
#[test]
fn transformer_ordering_matches_fig6() {
    let model = TinyTransformer::bert_like(23).unwrap();
    let inputs = bert_inputs(96, model.hidden(), 3_000);

    let int8 = classification_fidelity(&model, &inputs, &StaticHighPolicy, 100.0).unwrap();
    let drift =
        classification_fidelity(&model, &inputs, &DriftPolicy::new(0.3).unwrap(), 100.0).unwrap();
    let drq =
        classification_fidelity(&model, &inputs, &DrqPolicy::new(1.0).unwrap(), 100.0).unwrap();

    assert!(int8.agreement > 0.95, "int8 {}", int8.agreement);
    assert!(
        drift.low_fraction > 0.8,
        "drift share {}",
        drift.low_fraction
    );
    assert!(
        int8.agreement - drift.agreement < 0.06,
        "drift lost too much: {} vs {}",
        drift.agreement,
        int8.agreement
    );
    assert!(
        drift.agreement > drq.agreement + 0.02,
        "drift {} should clearly beat drq {}",
        drift.agreement,
        drq.agreement
    );
    assert!(
        int8.agreement - drq.agreement > 0.05,
        "drq should lose visibly: {} vs {}",
        drq.agreement,
        int8.agreement
    );
}

/// The Fig. 6 CNN story: on region-structured image data, both dynamic
/// schemes hold up.
#[test]
fn cnn_both_schemes_hold_up() {
    let model = TinyCnn::resnet_like(11).unwrap();
    let inputs: Vec<Tensor> = (0..48)
        .map(|i| {
            ImageProfile::natural()
                .generate(3, 16, 16, 2_000 + i as u64)
                .unwrap()
        })
        .collect();
    let drq =
        classification_fidelity(&model, &inputs, &DrqPolicy::new(1.0).unwrap(), 100.0).unwrap();
    let drift =
        classification_fidelity(&model, &inputs, &DriftPolicy::new(0.05).unwrap(), 100.0).unwrap();
    assert!(drq.agreement > 0.9, "drq on cnn {}", drq.agreement);
    assert!(drift.agreement > 0.9, "drift on cnn {}", drift.agreement);
    assert!(
        drift.low_fraction > 0.8,
        "drift share {}",
        drift.low_fraction
    );
}

/// The Table 1 story: the LLM perplexity proxy stays within a modest
/// factor of INT8 at a high 4-bit share, and both degrade from FP32.
#[test]
fn llm_perplexity_matches_table1_shape() {
    let model = TinyTransformer::llm_like(41, 48).unwrap();
    let inputs: Vec<Tensor> = (0..10)
        .map(|i| {
            TokenProfile::llm()
                .generate(24, 64, 6_000 + i as u64)
                .unwrap()
        })
        .collect();
    let anchor = 17.48;
    let fp32 = perplexity_proxy(&model, &inputs, None, anchor).unwrap();
    let int8 = perplexity_proxy(&model, &inputs, Some(&StaticHighPolicy), anchor).unwrap();
    let ours = perplexity_proxy(
        &model,
        &inputs,
        Some(&DriftPolicy::new(0.1).unwrap()),
        anchor,
    )
    .unwrap();
    assert_eq!(fp32.perplexity, anchor);
    assert!(int8.perplexity >= anchor);
    assert!(ours.perplexity >= anchor);
    assert!(ours.low_fraction > 0.85, "llm share {}", ours.low_fraction);
    assert!(
        ours.perplexity < int8.perplexity * 1.10,
        "ours {} should stay within 10% of int8 {}",
        ours.perplexity,
        int8.perplexity
    );
}

/// Calibration integration: the Hessian-aware calibrator picks a δ that
/// actually reduces precision without wrecking the proxy loss.
#[test]
fn hessian_calibration_integrates() {
    use drift::core::calibrate::{CalibrationLayer, HessianCalibrator};
    use drift::tensor::subtensor::SubTensorScheme;

    let layers: Vec<CalibrationLayer> = (0..3)
        .map(|i| {
            let acts = TokenProfile::bert().generate(32, 64, 7_000 + i).unwrap();
            CalibrationLayer {
                name: format!("l{i}"),
                activations: acts,
                scheme: SubTensorScheme::token(64),
                weights: Some(drift::nn::datagen::xavier_weights(64, 64, 8_000 + i).unwrap()),
            }
        })
        .collect();
    let calibrator = HessianCalibrator::new();
    let mut rng = drift::tensor::rng::seeded(1);
    let result = calibrator.calibrate(&layers, 30.0, &mut rng).unwrap();
    assert!(result.delta > 0.0);
    assert!(
        result.low_fraction > 0.0,
        "calibrated share {}",
        result.low_fraction
    );
    assert_eq!(result.sweep.len(), calibrator.candidates.len());
    // A looser budget admits a smaller δ and at least as much 4-bit.
    let mut rng2 = drift::tensor::rng::seeded(1);
    let loose = calibrator.calibrate(&layers, 300.0, &mut rng2).unwrap();
    assert!(loose.delta <= result.delta);
    assert!(loose.low_fraction >= result.low_fraction);
}
