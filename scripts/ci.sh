#!/usr/bin/env bash
# The full CI gate: formatting, lints (warnings are errors), the tier-1
# build+test pass, and the workspace test suite. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== rustdoc (drift crates, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p drift -p drift-obs -p drift-tensor -p drift-quant -p drift-accel \
  -p drift-core -p drift-nn -p drift-serve -p drift-bench -p drift-cli

echo "== doc tests =="
cargo test -q --workspace --doc

echo "ci: all green"
