#!/usr/bin/env bash
# The full CI gate: formatting, lints (warnings are errors), the tier-1
# build+test pass, and the workspace test suite. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== gateway smoke test =="
# End-to-end over a real socket: start the gateway on an ephemeral port,
# drive it with the closed-loop load generator (which fails on any lost,
# shed-without-retry-success, or duplicated response), then drain it and
# require a clean exit within a bounded wait.
cargo build --release -p drift-cli
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 4 \
  --port-file "$PORT_FILE" &
GW_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$PORT_FILE" ]; then
  echo "gateway smoke: server never wrote its port file" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
GW_ADDR="$(cat "$PORT_FILE")"
./target/release/drift loadgen --addr "$GW_ADDR" --clients 4 --jobs 200 \
  > /dev/null
./target/release/drift gateway-stop --addr "$GW_ADDR"
for _ in $(seq 1 100); do
  kill -0 "$GW_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$GW_PID" 2>/dev/null; then
  echo "gateway smoke: server did not exit within 10s of the drain" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
wait "$GW_PID"
rm -f "$PORT_FILE"
echo "gateway smoke: ok"

echo "== gateway smoke test (EDF queue) =="
# Same end-to-end pass with the earliest-deadline-first discipline and
# jittered per-job deadlines: verifies --queue edf admission, ordering,
# and drain over a real socket (docs/SCHEDULING.md).
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 4 \
  --queue edf --port-file "$PORT_FILE" &
GW_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$PORT_FILE" ]; then
  echo "gateway EDF smoke: server never wrote its port file" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
GW_ADDR="$(cat "$PORT_FILE")"
./target/release/drift loadgen --addr "$GW_ADDR" --clients 4 --jobs 200 \
  --deadline-ms 2000 --deadline-jitter-ms 2000 > /dev/null
./target/release/drift gateway-stop --addr "$GW_ADDR"
for _ in $(seq 1 100); do
  kill -0 "$GW_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$GW_PID" 2>/dev/null; then
  echo "gateway EDF smoke: server did not exit within 10s of the drain" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
wait "$GW_PID"
rm -f "$PORT_FILE"
echo "gateway EDF smoke: ok"

echo "== router smoke test =="
# Two gateway shards plus the consistent-hash router, all on ephemeral
# ports: drive the router with the closed-loop load generator (which
# fails on any lost or duplicated response), check both shards actually
# received traffic, then drain everything within a bounded wait.
GW1_PORT_FILE="$(mktemp)"; rm -f "$GW1_PORT_FILE"
GW2_PORT_FILE="$(mktemp)"; rm -f "$GW2_PORT_FILE"
RT_PORT_FILE="$(mktemp)";  rm -f "$RT_PORT_FILE"
RT_METRICS="$(mktemp)"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW1_PORT_FILE" &
GW1_PID=$!
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW2_PORT_FILE" &
GW2_PID=$!
for _ in $(seq 1 100); do
  [ -s "$GW1_PORT_FILE" ] && [ -s "$GW2_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$GW1_PORT_FILE" ] || ! [ -s "$GW2_PORT_FILE" ]; then
  echo "router smoke: a shard gateway never wrote its port file" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
GW1_ADDR="$(cat "$GW1_PORT_FILE")"
GW2_ADDR="$(cat "$GW2_PORT_FILE")"
./target/release/drift router --addr 127.0.0.1:0 \
  --shards "$GW1_ADDR,$GW2_ADDR" \
  --port-file "$RT_PORT_FILE" --metrics-out "$RT_METRICS" &
RT_PID=$!
for _ in $(seq 1 100); do
  [ -s "$RT_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$RT_PORT_FILE" ]; then
  echo "router smoke: router never wrote its port file" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
RT_ADDR="$(cat "$RT_PORT_FILE")"
./target/release/drift loadgen --addr "$RT_ADDR" --clients 4 --jobs 200 \
  > /dev/null
./target/release/drift router-stop --addr "$RT_ADDR"
for _ in $(seq 1 100); do
  kill -0 "$RT_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$RT_PID" 2>/dev/null; then
  echo "router smoke: router did not exit within 10s of the drain" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
wait "$RT_PID"
# The drained router's snapshot must show every shard took traffic.
ROUTED_SERIES="$(grep -c 'drift_router_requests_routed_total' "$RT_METRICS" || true)"
if [ "$ROUTED_SERIES" -ne 2 ]; then
  echo "router smoke: expected 2 per-shard routed series, got $ROUTED_SERIES" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
if grep 'drift_router_requests_routed_total' "$RT_METRICS" \
  | grep -q '"value": 0'; then
  echo "router smoke: a shard received zero routed requests" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
./target/release/drift gateway-stop --addr "$GW1_ADDR"
./target/release/drift gateway-stop --addr "$GW2_ADDR"
for _ in $(seq 1 100); do
  if ! kill -0 "$GW1_PID" 2>/dev/null && ! kill -0 "$GW2_PID" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$GW1_PID" 2>/dev/null || kill -0 "$GW2_PID" 2>/dev/null; then
  echo "router smoke: a shard gateway did not exit within 10s of the drain" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
wait "$GW1_PID" "$GW2_PID"
rm -f "$GW1_PORT_FILE" "$GW2_PORT_FILE" "$RT_PORT_FILE" "$RT_METRICS"
echo "router smoke: ok"

echo "== batch smoke test =="
# Batched wire protocol end to end (docs/SERVING.md): the same 200-job
# stream driven singleton and as 4 clients x 50-job batches — first
# through a gateway, then through the router over two shards — must
# produce byte-identical result JSONL. loadgen itself fails the run on
# any lost, duplicated, or unretried-shed id, so a clean diff proves
# batch framing, all-or-shed admission, per-batch schedule
# amortization, and router sub-batch splitting/reassembly all preserve
# the singleton bytes.
BATCH_DIR="$(mktemp -d)"
GW_PORT_FILE="$(mktemp)"; rm -f "$GW_PORT_FILE"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 4 \
  --port-file "$GW_PORT_FILE" &
GW_PID=$!
for _ in $(seq 1 100); do
  [ -s "$GW_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$GW_PORT_FILE" ]; then
  echo "batch smoke: gateway never wrote its port file" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
GW_ADDR="$(cat "$GW_PORT_FILE")"
./target/release/drift loadgen --addr "$GW_ADDR" --clients 4 --jobs 200 \
  > "$BATCH_DIR/gw-singleton.jsonl" 2> /dev/null
./target/release/drift loadgen --addr "$GW_ADDR" --clients 4 --jobs 200 \
  --batch 50 > "$BATCH_DIR/gw-batch.jsonl" 2> /dev/null
if ! diff -q "$BATCH_DIR/gw-singleton.jsonl" "$BATCH_DIR/gw-batch.jsonl" \
  > /dev/null; then
  echo "batch smoke: gateway batch results differ from singleton results" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
./target/release/drift gateway-stop --addr "$GW_ADDR"
for _ in $(seq 1 100); do
  kill -0 "$GW_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$GW_PID" 2>/dev/null; then
  echo "batch smoke: gateway did not exit within 10s of the drain" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
wait "$GW_PID"
rm -f "$GW_PORT_FILE"
# The same pass through the sharding tier: mixed-key batches force the
# router to split into per-shard sub-batches and reassemble.
GW1_PORT_FILE="$(mktemp)"; rm -f "$GW1_PORT_FILE"
GW2_PORT_FILE="$(mktemp)"; rm -f "$GW2_PORT_FILE"
RT_PORT_FILE="$(mktemp)";  rm -f "$RT_PORT_FILE"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW1_PORT_FILE" &
GW1_PID=$!
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW2_PORT_FILE" &
GW2_PID=$!
for _ in $(seq 1 100); do
  [ -s "$GW1_PORT_FILE" ] && [ -s "$GW2_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$GW1_PORT_FILE" ] || ! [ -s "$GW2_PORT_FILE" ]; then
  echo "batch smoke: a shard gateway never wrote its port file" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
GW1_ADDR="$(cat "$GW1_PORT_FILE")"
GW2_ADDR="$(cat "$GW2_PORT_FILE")"
./target/release/drift router --addr 127.0.0.1:0 \
  --shards "$GW1_ADDR,$GW2_ADDR" --port-file "$RT_PORT_FILE" &
RT_PID=$!
for _ in $(seq 1 100); do
  [ -s "$RT_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$RT_PORT_FILE" ]; then
  echo "batch smoke: router never wrote its port file" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
RT_ADDR="$(cat "$RT_PORT_FILE")"
./target/release/drift loadgen --addr "$RT_ADDR" --clients 4 --jobs 200 \
  > "$BATCH_DIR/rt-singleton.jsonl" 2> /dev/null
./target/release/drift loadgen --addr "$RT_ADDR" --clients 4 --jobs 200 \
  --batch 50 > "$BATCH_DIR/rt-batch.jsonl" 2> /dev/null
if ! diff -q "$BATCH_DIR/rt-singleton.jsonl" "$BATCH_DIR/rt-batch.jsonl" \
  > /dev/null; then
  echo "batch smoke: router batch results differ from singleton results" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
# The gateway and router runs offered the same stream, so all four
# result files must agree byte for byte.
if ! diff -q "$BATCH_DIR/gw-singleton.jsonl" "$BATCH_DIR/rt-batch.jsonl" \
  > /dev/null; then
  echo "batch smoke: routed batch results differ from direct gateway results" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
./target/release/drift router-stop --addr "$RT_ADDR"
./target/release/drift gateway-stop --addr "$GW1_ADDR"
./target/release/drift gateway-stop --addr "$GW2_ADDR"
for _ in $(seq 1 100); do
  if ! kill -0 "$RT_PID" 2>/dev/null && ! kill -0 "$GW1_PID" 2>/dev/null \
    && ! kill -0 "$GW2_PID" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$RT_PID" 2>/dev/null || kill -0 "$GW1_PID" 2>/dev/null \
  || kill -0 "$GW2_PID" 2>/dev/null; then
  echo "batch smoke: a process did not exit within 10s of the drain" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
wait "$RT_PID" "$GW1_PID" "$GW2_PID"
rm -f "$GW1_PORT_FILE" "$GW2_PORT_FILE" "$RT_PORT_FILE"
rm -rf "$BATCH_DIR"
echo "batch smoke: ok"

echo "== trace smoke test =="
# End-to-end distributed tracing: loadgen through the router and two
# gateway shards, every tier writing a JSONL span file, with 1-in-1
# sampling decided at the router (the ingress edge). `drift trace`
# merges the three files and asserts every sampled trace reconstructs
# a full waterfall — all router and gateway hops plus a serve-tier
# span, exactly one trace per job, zero orphaned spans (the default
# failure mode; no --allow-orphans here). docs/OBSERVABILITY.md.
GW1_PORT_FILE="$(mktemp)"; rm -f "$GW1_PORT_FILE"
GW2_PORT_FILE="$(mktemp)"; rm -f "$GW2_PORT_FILE"
RT_PORT_FILE="$(mktemp)";  rm -f "$RT_PORT_FILE"
GW1_TRACE="$(mktemp)"
GW2_TRACE="$(mktemp)"
RT_TRACE="$(mktemp)"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW1_PORT_FILE" --trace-out "$GW1_TRACE" &
GW1_PID=$!
./target/release/drift gateway --addr 127.0.0.1:0 --workers 2 \
  --port-file "$GW2_PORT_FILE" --trace-out "$GW2_TRACE" &
GW2_PID=$!
for _ in $(seq 1 100); do
  [ -s "$GW1_PORT_FILE" ] && [ -s "$GW2_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$GW1_PORT_FILE" ] || ! [ -s "$GW2_PORT_FILE" ]; then
  echo "trace smoke: a shard gateway never wrote its port file" >&2
  kill "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
GW1_ADDR="$(cat "$GW1_PORT_FILE")"
GW2_ADDR="$(cat "$GW2_PORT_FILE")"
./target/release/drift router --addr 127.0.0.1:0 \
  --shards "$GW1_ADDR,$GW2_ADDR" --port-file "$RT_PORT_FILE" \
  --trace-out "$RT_TRACE" --trace-sample 1/1 --trace-seed 7 &
RT_PID=$!
for _ in $(seq 1 100); do
  [ -s "$RT_PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$RT_PORT_FILE" ]; then
  echo "trace smoke: router never wrote its port file" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
RT_ADDR="$(cat "$RT_PORT_FILE")"
./target/release/drift loadgen --addr "$RT_ADDR" --clients 4 --jobs 200 \
  > /dev/null
./target/release/drift router-stop --addr "$RT_ADDR"
./target/release/drift gateway-stop --addr "$GW1_ADDR"
./target/release/drift gateway-stop --addr "$GW2_ADDR"
for _ in $(seq 1 100); do
  if ! kill -0 "$RT_PID" 2>/dev/null && ! kill -0 "$GW1_PID" 2>/dev/null \
    && ! kill -0 "$GW2_PID" 2>/dev/null; then
    break
  fi
  sleep 0.1
done
if kill -0 "$RT_PID" 2>/dev/null || kill -0 "$GW1_PID" 2>/dev/null \
  || kill -0 "$GW2_PID" 2>/dev/null; then
  echo "trace smoke: a process did not exit within 10s of the drain" >&2
  kill "$RT_PID" "$GW1_PID" "$GW2_PID" 2>/dev/null || true
  exit 1
fi
wait "$RT_PID" "$GW1_PID" "$GW2_PID"
./target/release/drift trace "$RT_TRACE" "$GW1_TRACE" "$GW2_TRACE" \
  --expect-traces 200 \
  --check-services router,gateway,serve \
  --check-hops router.request,router.hop,gateway.request,gateway.queue_wait,gateway.execute,gateway.response_write \
  > /dev/null
rm -f "$GW1_PORT_FILE" "$GW2_PORT_FILE" "$RT_PORT_FILE" \
  "$GW1_TRACE" "$GW2_TRACE" "$RT_TRACE"
echo "trace smoke: ok"

echo "== store smoke test =="
# Schedule-store persistence end to end (docs/PERSISTENCE.md): serve a
# job stream cold with --store, then re-serve the same stream warm from
# the store file. The warm run must produce byte-identical results with
# zero schedule solves (a ~100% cache hit rate from the warm start),
# and the store tooling must verify and compact the file in place.
STORE_DIR="$(mktemp -d)"
STORE_FILE="$STORE_DIR/sched.drift"
STORE_JOBS="$STORE_DIR/jobs.jsonl"
for i in $(seq 0 99); do
  s=$((i % 10))
  printf '{"id":%d,"seed":%d,"kind":{"Schedule":{"m":%d,"k":128,"n":64,"fa":0.25,"fw":0.5}}}\n' \
    "$i" "$((i + 1))" "$((64 + 16 * s))"
done > "$STORE_JOBS"
./target/release/drift serve --jobs "$STORE_JOBS" --workers 2 \
  --store "$STORE_FILE" --metrics-out "$STORE_DIR/cold.json" \
  > "$STORE_DIR/cold.out" 2> /dev/null
./target/release/drift serve --jobs "$STORE_JOBS" --workers 2 \
  --store "$STORE_FILE" --metrics-out "$STORE_DIR/warm.json" \
  > "$STORE_DIR/warm.out" 2> /dev/null
if ! diff -q "$STORE_DIR/cold.out" "$STORE_DIR/warm.out" > /dev/null; then
  echo "store smoke: warm-started results differ from cold results" >&2
  exit 1
fi
if ! grep '"drift_store_records_loaded_total"' "$STORE_DIR/warm.json" \
  | grep -q '"value": 10'; then
  echo "store smoke: warm start did not load the 10 stored schedules" >&2
  exit 1
fi
# A never-incremented counter is absent from the snapshot, so the warm
# run passes iff the miss counter is missing or explicitly zero.
if grep '"drift_schedule_cache_misses_total"' "$STORE_DIR/warm.json" \
  | grep -v '"value": 0' | grep -q .; then
  echo "store smoke: warm-started run still solved schedules (cache misses != 0)" >&2
  exit 1
fi
./target/release/drift store verify "$STORE_FILE" --deep > /dev/null
./target/release/drift store compact "$STORE_FILE" > /dev/null
./target/release/drift store verify "$STORE_FILE" --deep > /dev/null
rm -rf "$STORE_DIR"
echo "store smoke: ok"

echo "== doc links =="
# Every relative markdown link in README.md and docs/*.md must point at
# a file that exists (anchors are stripped; absolute URLs are skipped).
DOC_LINK_FAILURES=0
for doc in README.md docs/*.md; do
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if ! [ -e "$(dirname "$doc")/$path" ] && ! [ -e "$path" ]; then
      echo "doc links: $doc -> $target (missing)" >&2
      DOC_LINK_FAILURES=$((DOC_LINK_FAILURES + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')
done
if [ "$DOC_LINK_FAILURES" -ne 0 ]; then
  echo "doc links: $DOC_LINK_FAILURES broken relative link(s)" >&2
  exit 1
fi
echo "doc links: ok"

echo "== rustdoc (drift crates, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p drift -p drift-obs -p drift-tensor -p drift-quant -p drift-accel \
  -p drift-core -p drift-store -p drift-nn -p drift-serve \
  -p drift-gateway -p drift-router -p drift-bench -p drift-cli

echo "== doc tests =="
cargo test -q --workspace --doc

echo "ci: all green"
