#!/usr/bin/env bash
# The full CI gate: formatting, lints (warnings are errors), the tier-1
# build+test pass, and the workspace test suite. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== gateway smoke test =="
# End-to-end over a real socket: start the gateway on an ephemeral port,
# drive it with the closed-loop load generator (which fails on any lost,
# shed-without-retry-success, or duplicated response), then drain it and
# require a clean exit within a bounded wait.
cargo build --release -p drift-cli
PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/drift gateway --addr 127.0.0.1:0 --workers 4 \
  --port-file "$PORT_FILE" &
GW_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if ! [ -s "$PORT_FILE" ]; then
  echo "gateway smoke: server never wrote its port file" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
GW_ADDR="$(cat "$PORT_FILE")"
./target/release/drift loadgen --addr "$GW_ADDR" --clients 4 --jobs 200 \
  > /dev/null
./target/release/drift gateway-stop --addr "$GW_ADDR"
for _ in $(seq 1 100); do
  kill -0 "$GW_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$GW_PID" 2>/dev/null; then
  echo "gateway smoke: server did not exit within 10s of the drain" >&2
  kill "$GW_PID" 2>/dev/null || true
  exit 1
fi
wait "$GW_PID"
rm -f "$PORT_FILE"
echo "gateway smoke: ok"

echo "== rustdoc (drift crates, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p drift -p drift-obs -p drift-tensor -p drift-quant -p drift-accel \
  -p drift-core -p drift-nn -p drift-serve -p drift-gateway \
  -p drift-bench -p drift-cli

echo "== doc tests =="
cargo test -q --workspace --doc

echo "ci: all green"
