#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation into
# results/. Deterministic; ~1 minute on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINARIES=(
  fig1_subtensor_dynamics
  fig2_bitfusion_stalls
  fig3_conversion_choices
  fig4_architecture
  fig5_fabric_partition
  fig6_accuracy
  table1_llm_perplexity
  fig7_latency
  fig8_energy
  sweep_mix
  ablate_scheduler
  ablate_metrics
  ablate_granularity
  ablate_flexible_precision
  ablate_gating
)
for bin in "${BINARIES[@]}"; do
  echo "== $bin =="
  cargo run --release -q -p drift-bench --bin "$bin" | tee "results/$bin.txt"
  echo
done
